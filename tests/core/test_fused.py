"""The fused native map kernel vs its numpy parity oracles.

The fused C pass (sketch → per-trial binary search → lazy-update vote)
replaces three numpy stages at once, so these tests gate it the hard way:
fuzzed bit-identity against *both* retained oracles — ``count_hits_lazy``
(the paper's Algorithm 2) and ``count_hits_vectorised`` — across misses,
empty segments, duplicate values spanning column runs, min_hits
thresholds and single-trial stores, plus a thread-invariance gate: the
output must not depend on ``REPRO_NATIVE_THREADS``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hitcounter import (
    count_hits_fused,
    count_hits_lazy,
    count_hits_vectorised,
)
from repro.core.store import ColumnarSketchStore
from repro.sketch import _native
from repro.sketch.jem import HashFamily, query_kernel

needs_native = pytest.mark.skipif(
    _native.load() is None, reason="native kernels unavailable"
)


def random_store(rng, trials, n_subjects, n_entries, value_range):
    """A columnar store with random (value, subject) entries per trial."""
    subjects = rng.integers(0, n_subjects, n_entries).astype(np.uint64)
    keys = np.empty((trials, n_entries), dtype=np.uint64)
    for t in range(trials):
        values = rng.integers(0, value_range, n_entries).astype(np.uint64)
        keys[t] = np.sort((values << np.uint64(32)) | subjects)
    return ColumnarSketchStore.from_trial_keys(keys, n_subjects)


def random_query_block(rng, n_segments, max_len, value_pool):
    """Concatenated query values + starts, with some empty segments."""
    lengths = rng.integers(0, max_len, n_segments)
    starts = np.zeros(n_segments, dtype=np.int64)
    np.cumsum(lengths[:-1], out=starts[1:])
    values = rng.integers(0, value_pool, int(lengths.sum())).astype(np.uint64)
    return values, starts, lengths


def oracle_hits(store, family, values, starts, lengths, min_hits):
    """BestHits via the numpy sketch kernel + both retained vote oracles."""
    trials, n_segments = family.size, starts.size
    mask = lengths > 0
    sketches = np.zeros((trials, n_segments), dtype=np.uint64)
    nonempty = np.flatnonzero(mask)
    if nonempty.size:
        keep = np.concatenate(
            [np.arange(starts[j], starts[j] + lengths[j]) for j in nonempty]
        )
        compact_starts = np.zeros(nonempty.size, dtype=np.int64)
        np.cumsum(lengths[nonempty][:-1], out=compact_starts[1:])
        sketches[:, nonempty] = query_kernel(values[keep], compact_starts, family)
    lazy = count_hits_lazy(store, sketches, min_hits=min_hits, query_mask=mask)
    vect = count_hits_vectorised(store, sketches, min_hits=min_hits, query_mask=mask)
    assert np.array_equal(lazy.subject, vect.subject)
    assert np.array_equal(lazy.count, vect.count)
    return lazy


def fused_hits(store, family, values, starts, lengths, min_hits, threads=1):
    """Compact the block to its non-empty segments (the production layout
    produced by query_minimizer_concat) and run the fused path."""
    nonempty = np.flatnonzero(lengths > 0)
    keep = np.concatenate(
        [np.arange(starts[j], starts[j] + lengths[j]) for j in nonempty]
    ) if nonempty.size else np.empty(0, dtype=np.int64)
    compact_starts = np.zeros(nonempty.size, dtype=np.int64)
    if nonempty.size:
        np.cumsum(lengths[nonempty][:-1], out=compact_starts[1:])
    return count_hits_fused(
        store,
        values[keep],
        compact_starts,
        family,
        min_hits=min_hits,
        n_queries=starts.size,
        nonempty=nonempty,
        threads=threads,
    )


@needs_native
class TestFusedParity:
    def test_fuzzed_parity_against_both_oracles(self):
        """Random stores and query blocks: fused == lazy == vectorised."""
        rng = np.random.default_rng(7)
        for case in range(40):
            trials = int(rng.integers(1, 8))
            n_subjects = int(rng.integers(1, 12))
            family = HashFamily.generate(trials, seed=case)
            store = random_store(
                rng, trials, n_subjects,
                n_entries=int(rng.integers(0, 400)),
                value_range=int(rng.choice([300, 2**16, 2**31])),
            )
            values, starts, lengths = random_query_block(
                rng, n_segments=int(rng.integers(1, 50)), max_len=30,
                value_pool=int(rng.choice([8, 50, 300])),
            )
            min_hits = int(rng.integers(1, 4))
            expected = oracle_hits(store, family, values, starts, lengths, min_hits)
            got = fused_hits(store, family, values, starts, lengths, min_hits)
            assert got is not None
            assert np.array_equal(got.subject, expected.subject), f"case {case}"
            assert np.array_equal(got.count, expected.count), f"case {case}"

    def test_all_misses(self):
        """Query values disjoint from the store: everything unmapped."""
        rng = np.random.default_rng(11)
        family = HashFamily.generate(4, seed=1)
        store = random_store(rng, 4, 5, n_entries=50, value_range=100)
        values = rng.integers(10_000, 20_000, 120).astype(np.uint64)
        starts = np.arange(0, 120, 10, dtype=np.int64)
        lengths = np.full(12, 10, dtype=np.int64)
        got = fused_hits(store, family, values, starts, lengths, 1)
        assert got is not None
        assert (got.subject == -1).all() and (got.count == 0).all()
        expected = oracle_hits(store, family, values, starts, lengths, 1)
        assert np.array_equal(got.subject, expected.subject)

    def test_empty_segments_stay_unmapped(self):
        """Zero-length segments report (-1, 0) in an otherwise mapped block."""
        rng = np.random.default_rng(13)
        family = HashFamily.generate(3, seed=2)
        store = random_store(rng, 3, 4, n_entries=200, value_range=64)
        values = rng.integers(0, 64, 40).astype(np.uint64)
        # segments 1 and 3 are empty (consecutive equal starts)
        starts = np.array([0, 20, 20, 40, 40], dtype=np.int64)
        lengths = np.array([20, 0, 20, 0, 0], dtype=np.int64)
        got = fused_hits(store, family, values, starts, lengths, 1)
        expected = oracle_hits(store, family, values, starts, lengths, 1)
        assert got is not None
        assert np.array_equal(got.subject, expected.subject)
        assert np.array_equal(got.count, expected.count)
        assert got.subject[1] == -1 and got.count[1] == 0
        assert got.subject[3] == -1 and got.subject[4] == -1

    def test_duplicate_values_spanning_column_runs(self):
        """Many store entries share one value: the whole run is voted."""
        family = HashFamily.generate(2, seed=3)
        # one hot value mapped by every subject, in every trial
        subjects = np.arange(6, dtype=np.uint64)
        hot = np.uint64(42)
        keys = np.stack([np.sort((hot << np.uint64(32)) | subjects)] * 2)
        store = ColumnarSketchStore.from_trial_keys(keys, 6)
        values = np.full(10, 42, dtype=np.uint64)
        starts = np.array([0, 5], dtype=np.int64)
        lengths = np.array([5, 5], dtype=np.int64)
        got = fused_hits(store, family, values, starts, lengths, 1)
        expected = oracle_hits(store, family, values, starts, lengths, 1)
        assert got is not None
        assert np.array_equal(got.subject, expected.subject)
        assert np.array_equal(got.count, expected.count)
        # every trial hits the full run; ties break to the smallest subject
        assert (got.subject == 0).all() and (got.count == 2).all()

    @pytest.mark.parametrize("min_hits", [1, 2, 3, 30])
    def test_min_hits_thresholds(self, min_hits):
        rng = np.random.default_rng(17)
        family = HashFamily.generate(5, seed=4)
        store = random_store(rng, 5, 6, n_entries=300, value_range=50)
        values, starts, lengths = random_query_block(rng, 20, 25, 50)
        got = fused_hits(store, family, values, starts, lengths, min_hits)
        expected = oracle_hits(store, family, values, starts, lengths, min_hits)
        assert got is not None
        assert np.array_equal(got.subject, expected.subject)
        assert np.array_equal(got.count, expected.count)

    def test_single_trial_store(self):
        rng = np.random.default_rng(19)
        family = HashFamily.generate(1, seed=5)
        store = random_store(rng, 1, 3, n_entries=80, value_range=40)
        values, starts, lengths = random_query_block(rng, 15, 20, 40)
        got = fused_hits(store, family, values, starts, lengths, 1)
        expected = oracle_hits(store, family, values, starts, lengths, 1)
        assert got is not None
        assert np.array_equal(got.subject, expected.subject)
        assert np.array_equal(got.count, expected.count)

    def test_non_columnar_store_returns_none(self):
        """Stores without lookup_fused fall back to numpy (None signal)."""
        rng = np.random.default_rng(23)
        family = HashFamily.generate(2, seed=6)
        store = random_store(rng, 2, 3, n_entries=50, value_range=30)
        values, starts, lengths = random_query_block(rng, 5, 10, 30)

        class NoFused:
            trials = store.trials

        got = count_hits_fused(
            NoFused(), values, starts, family, min_hits=1,
            n_queries=starts.size, nonempty=np.flatnonzero(lengths > 0),
        )
        assert got is None

    def test_kill_switch_returns_none(self, monkeypatch):
        rng = np.random.default_rng(29)
        family = HashFamily.generate(2, seed=7)
        store = random_store(rng, 2, 3, n_entries=50, value_range=30)
        values, starts, lengths = random_query_block(rng, 5, 10, 30)
        monkeypatch.setenv("REPRO_NO_NATIVE", "1")
        got = fused_hits(store, family, values, starts, lengths, 1)
        assert got is None


@needs_native
class TestThreadInvariance:
    @pytest.mark.parametrize("threads", [1, 2, 8])
    def test_explicit_thread_counts_bit_identical(self, threads):
        """The contract behind REPRO_NATIVE_THREADS: output never depends
        on the thread count — segments are independent and each worker
        owns a private counter array."""
        rng = np.random.default_rng(31)
        family = HashFamily.generate(6, seed=8)
        store = random_store(rng, 6, 8, n_entries=500, value_range=200)
        values, starts, lengths = random_query_block(rng, 40, 25, 200)
        baseline = fused_hits(store, family, values, starts, lengths, 2, threads=1)
        got = fused_hits(store, family, values, starts, lengths, 2, threads=threads)
        assert got is not None and baseline is not None
        assert np.array_equal(got.subject, baseline.subject)
        assert np.array_equal(got.count, baseline.count)

    @pytest.mark.parametrize("env_threads", ["1", "2", "8"])
    def test_env_override_bit_identical(self, monkeypatch, env_threads):
        rng = np.random.default_rng(37)
        family = HashFamily.generate(4, seed=9)
        store = random_store(rng, 4, 5, n_entries=300, value_range=100)
        values, starts, lengths = random_query_block(rng, 30, 20, 100)
        baseline = fused_hits(store, family, values, starts, lengths, 1, threads=1)
        monkeypatch.setenv("REPRO_NATIVE_THREADS", env_threads)
        assert _native.thread_count() == int(env_threads)
        got = fused_hits(
            store, family, values, starts, lengths, 1, threads=None
        )
        assert got is not None and baseline is not None
        assert np.array_equal(got.subject, baseline.subject)
        assert np.array_equal(got.count, baseline.count)
