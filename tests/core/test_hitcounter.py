import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SketchTable, count_hits_lazy, count_hits_vectorised
from repro.core.hitcounter import UNMAPPED
from repro.errors import MappingError
from repro.sketch import pack_key


def build_table(per_trial_pairs, n_subjects):
    keys = []
    for pairs in per_trial_pairs:
        if pairs:
            v = np.array([p[0] for p in pairs], dtype=np.uint64)
            s = np.array([p[1] for p in pairs], dtype=np.uint64)
            keys.append(np.unique(pack_key(v, s)))
        else:
            keys.append(np.empty(0, dtype=np.uint64))
    return SketchTable(keys, n_subjects)


def test_simple_majority():
    # Subject 1 collides with query 0 in both trials; subject 0 once.
    table = build_table([[(5, 0), (5, 1)], [(7, 1)]], n_subjects=2)
    qv = np.array([[5], [7]], dtype=np.uint64)
    hits = count_hits_vectorised(table, qv)
    assert hits.subject[0] == 1
    assert hits.count[0] == 2


def test_unmapped_query():
    table = build_table([[(5, 0)]], n_subjects=1)
    qv = np.array([[99]], dtype=np.uint64)
    hits = count_hits_vectorised(table, qv)
    assert hits.subject[0] == UNMAPPED
    assert hits.count[0] == 0
    assert hits.n_mapped == 0


def test_tie_break_smallest_subject():
    table = build_table([[(5, 2), (5, 7)]], n_subjects=8)
    qv = np.array([[5]], dtype=np.uint64)
    for fn in (count_hits_vectorised, count_hits_lazy):
        hits = fn(table, qv)
        assert hits.subject[0] == 2


def test_min_hits_threshold():
    table = build_table([[(5, 0)], [(7, 0)]], n_subjects=1)
    qv = np.array([[5], [8]], dtype=np.uint64)  # only 1 collision
    hits = count_hits_vectorised(table, qv, min_hits=2)
    assert hits.subject[0] == UNMAPPED


def test_query_mask_blocks_lookup():
    table = build_table([[(0, 0)]], n_subjects=1)
    qv = np.zeros((1, 2), dtype=np.uint64)  # value 0 would collide
    mask = np.array([True, False])
    hits = count_hits_vectorised(table, qv, query_mask=mask)
    assert hits.subject[0] == 0
    assert hits.subject[1] == UNMAPPED


def test_trials_mismatch():
    table = build_table([[(5, 0)]], n_subjects=1)
    with pytest.raises(MappingError):
        count_hits_vectorised(table, np.zeros((2, 1), dtype=np.uint64))


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_lazy_and_vectorised_agree(data):
    """The paper's lazy counter and the vectorised groupby are equivalent."""
    trials = data.draw(st.integers(min_value=1, max_value=4))
    n_subjects = data.draw(st.integers(min_value=1, max_value=6))
    n_queries = data.draw(st.integers(min_value=1, max_value=8))
    values = st.integers(min_value=0, max_value=5)
    per_trial = [
        [
            (data.draw(values), s)
            for s in range(n_subjects)
            if data.draw(st.booleans())
        ]
        for _ in range(trials)
    ]
    table = build_table(per_trial, n_subjects)
    qv = np.array(
        [[data.draw(values) for _ in range(n_queries)] for _ in range(trials)],
        dtype=np.uint64,
    )
    lazy = count_hits_lazy(table, qv)
    vec = count_hits_vectorised(table, qv)
    assert np.array_equal(lazy.subject, vec.subject)
    assert np.array_equal(lazy.count, vec.count)
