"""LSM mutable index: mutate ≡ rebuild parity, durability, chaos recovery.

The load-bearing claim of the log-structured layer: for any schedule of
``add_contigs`` / ``remove_contigs`` / ``flush`` / ``compact``, the
resident index is **bit-identical** — same packed keys, same lookups,
same mapping — to a monolithic :class:`JEMMapper` rebuild over the live
contigs with the same subject ids.  That holds on the numpy oracle and
the fused native path alike, across a close/reopen of the durable form
(manifest + WAL-suffix replay), and across a SIGKILL at any WAL record
boundary drawn by a seeded :class:`ChaosPlan`.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro import JEMConfig, JEMMapper, load_index, save_index
from repro.core.lsm import (
    MANIFEST_NAME,
    IndexGeneration,
    MutableSketchStore,
    store_stats,
)
from repro.core.sketch_table import SketchTable
from repro.core.store import DictSketchStore
from repro.errors import MappingError
from repro.resilience.chaos import ChaosPlan
from repro.seq.records import SequenceSet
from repro.sketch.jem import subject_sketch_pairs

CONFIG = JEMConfig(k=12, w=20, ell=300, trials=5, seed=17)

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def _dna(rng, n: int) -> str:
    return "".join("ACGT"[c] for c in rng.integers(0, 4, size=n))


def _contig_pairs(rng, count: int, length: int = 900, prefix: str = "c"):
    return [(f"{prefix}{i}", _dna(rng, length)) for i in range(count)]


class Model:
    """Test-side mirror of id allocation: names in add order, removed ids.

    Subject ids are allocation order and never reused — the invariant the
    reference below leans on to predict the exact packed keys.
    """

    def __init__(self) -> None:
        self.contigs: list[tuple[str, str]] = []
        self.removed: set[int] = set()

    def add(self, pairs) -> None:
        self.contigs.extend(pairs)

    def remove(self, name: str) -> None:
        for i, (n, _) in enumerate(self.contigs):
            if n == name and i not in self.removed:
                self.removed.add(i)
                return
        raise AssertionError(f"model: {name} not live")

    def live(self):
        return [
            (i, n, s)
            for i, (n, s) in enumerate(self.contigs)
            if i not in self.removed
        ]

    def live_names(self):
        return [n for _, n, _ in self.live()]


def expected_trial_keys(model: Model, cfg: JEMConfig = CONFIG) -> list[np.ndarray]:
    """Ground truth: per-contig sketches at the allocated ids, merged sorted."""
    family = cfg.hash_family()
    per_trial: list[list[np.ndarray]] = [[] for _ in range(cfg.trials)]
    for sid, name, seq in model.live():
        pairs = subject_sketch_pairs(
            SequenceSet.from_strings([(name, seq)]),
            cfg.k, cfg.w, cfg.ell, family, subject_id_offset=sid,
        )
        for t, arr in enumerate(pairs):
            per_trial[t].append(arr)
    return [
        np.sort(np.concatenate(chunks)) if chunks else np.empty(0, np.uint64)
        for chunks in per_trial
    ]


def assert_key_parity(handle: MutableSketchStore, model: Model) -> None:
    want = expected_trial_keys(model)
    for t in range(CONFIG.trials):
        assert np.array_equal(handle.trial_keys(t), want[t]), f"trial {t} diverged"
    assert handle.live_subject_names == model.live_names()


def assert_mapping_parity(handle: MutableSketchStore, model: Model, reads) -> None:
    """Map through the handle vs a monolithic rebuild; compare by name."""
    live = model.live()
    if not live:
        return
    adopted = JEMMapper(CONFIG)
    adopted.adopt_store(handle, handle.subject_names)
    got = adopted.map_reads(reads)
    rebuilt = JEMMapper(CONFIG)
    rebuilt.index(SequenceSet.from_strings([(n, s) for _, n, s in live]))
    want = rebuilt.map_reads(reads)
    got_names = [
        adopted.subject_names[s] if s >= 0 else None for s in got.subject
    ]
    want_names = [
        rebuilt.subject_names[s] if s >= 0 else None for s in want.subject
    ]
    assert got_names == want_names
    assert np.array_equal(got.hit_count, want.hit_count)


def seeded_handle(rng, count: int = 4):
    """An in-memory handle wrapping a statically built base index."""
    pairs = _contig_pairs(rng, count)
    base = SequenceSet.from_strings(pairs)
    mapper = JEMMapper(CONFIG, store_kind="columnar")
    mapper.index(base)
    handle = MutableSketchStore.in_memory(
        CONFIG, base_store=mapper.table, subject_names=base.names
    )
    model = Model()
    model.add(pairs)
    return handle, model


def reads_over(model: Model, rng, extra: int = 2) -> SequenceSet:
    """Reads whose ends land on live contigs, plus unmappable noise."""
    pairs = [(f"r_{n}", s) for _, n, s in model.live()]
    pairs += [(f"noise{i}", _dna(rng, 700)) for i in range(extra)]
    return SequenceSet.from_strings(pairs)


class TestMutateEqualsRebuild:
    """Satellite 3: random schedules, bit-identical on both lookup paths."""

    @pytest.mark.parametrize("no_native", [False, True])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_schedule_parity(self, seed, no_native, monkeypatch):
        if no_native:
            monkeypatch.setenv("REPRO_NO_NATIVE", "1")
        rng = np.random.default_rng(seed)
        handle, model = seeded_handle(rng)
        next_id = 0
        for _ in range(10):
            op = rng.choice(["add", "remove", "flush", "compact"])
            if op == "add":
                pairs = _contig_pairs(rng, 1, prefix=f"x{seed}_{next_id}_")
                next_id += 1
                handle.add_contigs(SequenceSet.from_strings(pairs))
                model.add(pairs)
            elif op == "remove":
                live = model.live_names()
                if len(live) > 1:
                    victim = live[int(rng.integers(0, len(live)))]
                    handle.remove_contigs([victim])
                    model.remove(victim)
            elif op == "flush":
                handle.flush()
            else:
                handle.compact()
            assert_key_parity(handle, model)
        assert_mapping_parity(handle, model, reads_over(model, rng))

    def test_incremental_adds_equal_monolithic_index(self, rng):
        """Adding one contig at a time from empty ≡ indexing the whole set."""
        pairs = _contig_pairs(rng, 5)
        handle = MutableSketchStore.in_memory(CONFIG)
        for pair in pairs:
            handle.add_contigs(SequenceSet.from_strings([pair]))
        mapper = JEMMapper(CONFIG)
        mapper.index(SequenceSet.from_strings(pairs))
        for t in range(CONFIG.trials):
            assert np.array_equal(handle.trial_keys(t), mapper.table.trial_keys(t))
        assert handle.subject_names == [n for n, _ in pairs]

    def test_remove_then_compact_drops_entries(self, rng):
        handle, model = seeded_handle(rng)
        before = store_stats(handle)
        handle.remove_contigs(["c1"])
        model.remove("c1")
        mid = store_stats(handle)
        assert mid["tombstones"] == 1
        assert mid["live_subjects"] == before["live_subjects"] - 1
        assert_key_parity(handle, model)
        handle.compact()
        after = store_stats(handle)
        assert after["tombstones"] == 0
        assert after["segments"] == 1
        assert after["total_entries"] < before["total_entries"]
        # removal is permanent: folding the tombstones away at compaction
        # must not resurrect the subject in the liveness count
        assert after["live_subjects"] == before["live_subjects"] - 1
        assert handle.current.is_clean
        assert_key_parity(handle, model)

    def test_generations_are_immutable_snapshots(self, rng):
        """A captured generation keeps answering from its own state."""
        handle, model = seeded_handle(rng)
        old = handle.current
        old_keys = [old.trial_keys(t).copy() for t in range(CONFIG.trials)]
        handle.remove_contigs(["c0"])
        handle.add_contigs(
            SequenceSet.from_strings(_contig_pairs(rng, 1, prefix="late"))
        )
        handle.compact()
        assert handle.generation > old.generation
        for t in range(CONFIG.trials):
            assert np.array_equal(old.trial_keys(t), old_keys[t])
        assert isinstance(handle.current, IndexGeneration)

    def test_duplicate_and_missing_names_rejected(self, rng):
        handle, _ = seeded_handle(rng)
        with pytest.raises(MappingError, match="already in the index"):
            handle.add_contigs(
                SequenceSet.from_strings([("c0", _dna(rng, 900))])
            )
        with pytest.raises(MappingError, match="not in the index"):
            handle.remove_contigs(["ghost"])

    def test_removed_name_is_reusable_with_fresh_id(self, rng):
        handle, model = seeded_handle(rng)
        handle.remove_contigs(["c2"])
        model.remove("c2")
        replacement = [("c2", _dna(rng, 900))]
        handle.add_contigs(SequenceSet.from_strings(replacement))
        model.add(replacement)
        assert handle.subject_names.count("c2") == 2  # old id stays allocated
        assert_key_parity(handle, model)


class TestStoreStats:
    def test_plain_store_reports_single_segment(self, rng):
        mapper = JEMMapper(CONFIG)
        mapper.index(SequenceSet.from_strings(_contig_pairs(rng, 3)))
        stats = store_stats(mapper.table)
        assert stats["generation"] == 0
        assert stats["segments"] == 1
        assert stats["memtable_entries"] == 0
        assert stats["total_entries"] == mapper.table.total_entries

    def test_mutable_store_reports_shape(self, rng):
        handle, _ = seeded_handle(rng)
        handle.add_contigs(
            SequenceSet.from_strings(_contig_pairs(rng, 1, prefix="m"))
        )
        stats = store_stats(handle)
        assert stats["generation"] == 1
        assert stats["memtable_entries"] > 0
        assert stats["nbytes"]["total"] >= stats["nbytes"]["segments"]


class TestDictStoreOrder:
    def test_unsorted_subject_run_comes_back_sorted(self):
        """Satellite 1: lookups honour the sorted-subject merge contract.

        Packed-key sorting makes unsorted runs unrepresentable through
        normal construction, so build the table without validation — the
        dict store must still normalise the run, because the LSM merge
        (concat + lexsort) and the columnar layout both assume it.
        """
        table = SketchTable.__new__(SketchTable)
        table.keys = [
            np.array([(5 << 32) | 9, (5 << 32) | 2, (7 << 32) | 4], dtype=np.uint64)
        ]
        table.n_subjects = 10
        store = DictSketchStore(table)
        hits = store.lookup_trial(0, np.array([5, 7], dtype=np.uint64))
        assert np.array_equal(hits.query_index, [0, 0, 1])
        assert np.array_equal(hits.subjects, [2, 9, 4])


class TestDurability:
    def seeded_durable(self, rng, tmp_path):
        pairs = _contig_pairs(rng, 4)
        base = SequenceSet.from_strings(pairs)
        mapper = JEMMapper(CONFIG, store_kind="columnar")
        mapper.index(base)
        run_dir = str(tmp_path / "idx")
        handle = MutableSketchStore.create(
            run_dir, CONFIG, base_store=mapper.table, subject_names=base.names
        )
        model = Model()
        model.add(pairs)
        return run_dir, handle, model

    def test_reopen_after_flush_and_compact(self, rng, tmp_path):
        run_dir, handle, model = self.seeded_durable(rng, tmp_path)
        extra = _contig_pairs(rng, 2, prefix="d")
        with handle:
            handle.add_contigs(SequenceSet.from_strings(extra))
            model.add(extra)
            handle.remove_contigs(["c1"])
            model.remove("c1")
            handle.flush()
            handle.compact()
            generation = handle.generation
        with MutableSketchStore.open(run_dir) as reopened:
            assert reopened.generation == generation
            assert reopened.current.is_clean
            assert_key_parity(reopened, model)

    def test_reopen_replays_wal_suffix_without_flush(self, rng, tmp_path):
        """Adds and removes that never flushed must survive via the WAL."""
        run_dir, handle, model = self.seeded_durable(rng, tmp_path)
        extra = _contig_pairs(rng, 2, prefix="w")
        with handle:
            handle.add_contigs(SequenceSet.from_strings(extra))
            model.add(extra)
            handle.remove_contigs(["c0"])
            model.remove("c0")
        with MutableSketchStore.open(run_dir) as reopened:
            assert_key_parity(reopened, model)
            assert_mapping_parity(reopened, model, reads_over(model, rng))

    def test_load_index_dispatches_to_mutable_directory(self, rng, tmp_path):
        run_dir, handle, model = self.seeded_durable(rng, tmp_path)
        with handle:
            handle.compact()
        mapper = load_index(run_dir)
        want = expected_trial_keys(model)
        for t in range(CONFIG.trials):
            assert np.array_equal(mapper.table.trial_keys(t), want[t])


class TestBundleMigration:
    def test_v3_bundle_loads_as_generation_zero(self, rng, tmp_path):
        pairs = _contig_pairs(rng, 4)
        mapper = JEMMapper(CONFIG, store_kind="columnar")
        mapper.index(SequenceSet.from_strings(pairs))
        bundle = str(tmp_path / "bundle.npz")
        save_index(mapper, bundle)
        handle = MutableSketchStore.from_bundle(bundle)
        assert handle.generation == 0
        assert handle.subject_names == mapper.subject_names
        for t in range(CONFIG.trials):
            assert np.array_equal(
                handle.trial_keys(t), mapper.table.trial_keys(t)
            )
        assert handle.current.is_clean

    def test_v3_bundle_migrates_to_durable_v4(self, rng, tmp_path):
        pairs = _contig_pairs(rng, 4)
        mapper = JEMMapper(CONFIG, store_kind="columnar")
        mapper.index(SequenceSet.from_strings(pairs))
        bundle = str(tmp_path / "bundle.npz")
        save_index(mapper, bundle)
        run_dir = str(tmp_path / "migrated")
        model = Model()
        model.add(pairs)
        extra = _contig_pairs(rng, 1, prefix="post")
        with MutableSketchStore.from_bundle(bundle, run_dir=run_dir) as handle:
            handle.add_contigs(SequenceSet.from_strings(extra))
            model.add(extra)
        with MutableSketchStore.open(run_dir) as reopened:
            assert_key_parity(reopened, model)


#: Deterministic mutation schedule the chaos child walks; every step is
#: guarded so a replayed prefix is recognised and skipped — running the
#: script twice (kill, then clean) must land on the same final state.
CHAOS_CHILD = textwrap.dedent(
    """
    import json, os, sys
    sys.path.insert(0, sys.argv[3])
    from repro import JEMConfig, JEMMapper
    from repro.core.lsm import MANIFEST_NAME, MutableSketchStore
    from repro.seq.records import SequenceSet

    run_dir, payload_path = sys.argv[1], sys.argv[2]
    payload = json.load(open(payload_path))
    cfg = JEMConfig(**payload["config"])
    if os.path.exists(os.path.join(run_dir, MANIFEST_NAME)):
        handle = MutableSketchStore.open(run_dir)
    else:
        base = SequenceSet.from_strings([tuple(p) for p in payload["base"]])
        mapper = JEMMapper(cfg, store_kind="columnar")
        mapper.index(base)
        handle = MutableSketchStore.create(
            run_dir, cfg, base_store=mapper.table, subject_names=base.names
        )
    with handle:
        for name, seq in payload["extra"]:
            if name not in handle.subject_names:
                handle.add_contigs(SequenceSet.from_strings([(name, seq)]))
        for name in payload["remove"]:
            if handle.is_live(name):
                handle.remove_contigs([name])
        handle.flush()
        if not handle.current.is_clean:
            handle.compact()
    print("DONE", handle.generation)
    """
)


class TestChaosRecovery:
    """SIGKILL at a seeded WAL-record boundary; reopen replays; rerun completes."""

    def run_child(self, script, run_dir, payload, env_overlay):
        env = {**os.environ, **env_overlay}
        env["PYTHONPATH"] = os.path.abspath(SRC)
        return subprocess.run(
            [sys.executable, script, run_dir, payload, os.path.abspath(SRC)],
            env=env, capture_output=True, text=True, timeout=120,
        )

    @pytest.mark.parametrize("seed", [3, 4, 5])
    def test_kill_resume_converges(self, seed, rng, tmp_path):
        base = _contig_pairs(rng, 3)
        extra = _contig_pairs(rng, 2, prefix="k")
        model = Model()
        model.add(base)
        model.add(extra)
        model.remove("c1")
        payload = {
            "config": {"k": CONFIG.k, "w": CONFIG.w, "ell": CONFIG.ell,
                       "trials": CONFIG.trials, "seed": CONFIG.seed},
            "base": base, "extra": extra, "remove": ["c1"],
        }
        payload_path = str(tmp_path / "payload.json")
        with open(payload_path, "w") as fh:
            json.dump(payload, fh)
        script = str(tmp_path / "chaos_child.py")
        with open(script, "w") as fh:
            fh.write(CHAOS_CHILD)
        run_dir = str(tmp_path / "idx")

        # the schedule appends 5 WAL records: 2 adds, 1 remove, flush, compact
        plan = ChaosPlan.seeded(seed, total_units=5)
        first = self.run_child(script, run_dir, payload_path, plan.env())
        assert first.returncode == -signal.SIGKILL, first.stderr

        second = self.run_child(script, run_dir, payload_path, {})
        assert second.returncode == 0, second.stderr
        assert second.stdout.startswith("DONE")

        with MutableSketchStore.open(run_dir) as recovered:
            assert recovered.current.is_clean
            assert_key_parity(recovered, model)
            assert_mapping_parity(recovered, model, reads_over(model, rng))

    def test_torn_tail_is_discarded_on_replay(self, rng, tmp_path):
        """Explicit torn-write kill: the half-frame must not poison replay."""
        base = _contig_pairs(rng, 3)
        extra = _contig_pairs(rng, 2, prefix="t")
        model = Model()
        model.add(base)
        model.add(extra)
        model.remove("c0")
        payload = {
            "config": {"k": CONFIG.k, "w": CONFIG.w, "ell": CONFIG.ell,
                       "trials": CONFIG.trials, "seed": CONFIG.seed},
            "base": base, "extra": extra, "remove": ["c0"],
        }
        payload_path = str(tmp_path / "payload.json")
        with open(payload_path, "w") as fh:
            json.dump(payload, fh)
        script = str(tmp_path / "chaos_child.py")
        with open(script, "w") as fh:
            fh.write(CHAOS_CHILD)
        run_dir = str(tmp_path / "idx")

        overlay = {"REPRO_CHAOS_KILL_AFTER": "2", "REPRO_CHAOS_TORN": "1"}
        first = self.run_child(script, run_dir, payload_path, overlay)
        assert first.returncode == -signal.SIGKILL, first.stderr

        second = self.run_child(script, run_dir, payload_path, {})
        assert second.returncode == 0, second.stderr

        with MutableSketchStore.open(run_dir) as recovered:
            assert_key_parity(recovered, model)
