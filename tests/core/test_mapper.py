import numpy as np
import pytest

from repro.core import JEMConfig, JEMMapper
from repro.errors import MappingError
from repro.seq import SequenceSet, decode


CFG = JEMConfig(k=12, w=20, ell=500, trials=10, seed=99)


def test_requires_index(clean_reads):
    mapper = JEMMapper(CFG)
    with pytest.raises(MappingError):
        mapper.map_reads(clean_reads)
    assert not mapper.is_indexed


def test_empty_contigs_rejected():
    mapper = JEMMapper(CFG)
    with pytest.raises(MappingError):
        mapper.index(SequenceSet.empty())


def test_perfect_mapping_on_clean_data(small_genome, tiling_contigs, clean_reads):
    """Error-free reads from a repeat-free genome map to covering contigs."""
    mapper = JEMMapper(CFG)
    mapper.index(tiling_contigs)
    result = mapper.map_reads(clean_reads)
    assert len(result) == 2 * len(clean_reads)
    assert result.n_mapped == len(result)  # everything maps
    # Verify each segment mapped to a contig that truly covers its locus.
    contig_bounds = []
    pos = 0
    for ln in tiling_contigs.lengths:
        contig_bounds.append((pos, pos + int(ln)))
        pos += int(ln) - 100
    for i, info in enumerate(result.infos):
        seg_meta = None
        # reconstruct truth from read meta
        read_meta = clean_reads.metas[info.read_index]
        if info.kind == "prefix":
            lo, hi = read_meta["ref_start"], read_meta["ref_start"] + CFG.ell
        else:
            lo, hi = read_meta["ref_end"] - CFG.ell, read_meta["ref_end"]
        sid = int(result.subject[i])
        c_lo, c_hi = contig_bounds[sid]
        overlap = min(hi, c_hi) - max(lo, c_lo)
        assert overlap >= CFG.k, f"segment {i} mapped to non-overlapping contig"


def test_mapping_deterministic(tiling_contigs, clean_reads):
    r1 = JEMMapper(CFG)
    r1.index(tiling_contigs)
    r2 = JEMMapper(CFG)
    r2.index(tiling_contigs)
    m1 = r1.map_reads(clean_reads)
    m2 = r2.map_reads(clean_reads)
    assert np.array_equal(m1.subject, m2.subject)
    assert np.array_equal(m1.hit_count, m2.hit_count)


def test_index_partitioned_equivalent(tiling_contigs, clean_reads):
    """S2+S3 style partitioned indexing == sequential indexing."""
    whole = JEMMapper(CFG)
    whole.index(tiling_contigs)
    parts = [
        tiling_contigs.slice(0, len(tiling_contigs) // 2),
        tiling_contigs.slice(len(tiling_contigs) // 2, len(tiling_contigs)),
    ]
    split = JEMMapper(CFG)
    split.index_partitioned(parts)
    for t in range(CFG.trials):
        assert np.array_equal(whole.table.keys[t], split.table.keys[t])
    m1 = whole.map_reads(clean_reads)
    m2 = split.map_reads(clean_reads)
    assert np.array_equal(m1.subject, m2.subject)


def test_unmappable_read(tiling_contigs):
    """A read unrelated to the contigs should not map (or map weakly)."""
    rng = np.random.default_rng(777)
    from repro.seq import random_codes

    foreign = SequenceSet.from_strings(
        [("alien", decode(random_codes(3000, rng)))]
    )
    mapper = JEMMapper(JEMConfig(k=16, w=20, ell=500, trials=10, seed=99, min_hits=3))
    mapper.index(tiling_contigs)
    result = mapper.map_reads(foreign)
    assert result.n_mapped == 0


def test_result_pairs_naming(tiling_contigs, clean_reads):
    mapper = JEMMapper(CFG)
    mapper.index(tiling_contigs)
    result = mapper.map_reads(clean_reads)
    pairs = result.pairs(mapper.subject_names)
    assert all(name.startswith("contig_") for _, name in pairs)
    assert pairs[0][0].endswith("/prefix")


def test_mapped_fraction(tiling_contigs, clean_reads):
    mapper = JEMMapper(CFG)
    mapper.index(tiling_contigs)
    result = mapper.map_reads(clean_reads)
    assert result.mapped_fraction == 1.0
