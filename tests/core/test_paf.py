import numpy as np
import pytest

from repro.core import JEMConfig, JEMMapper, extract_end_segments
from repro.core.paf import paf_records, write_paf
from repro.core.mapper import MappingResult
from repro.errors import MappingError
from repro.seq import SeqRecord, SequenceSet, SequenceSetBuilder, random_codes


@pytest.fixture
def mapped_world(rng):
    genome = random_codes(10_000, rng)
    contigs = SequenceSet.from_records(
        [SeqRecord("cA", genome[0:5_000]), SeqRecord("cB", genome[5_000:10_000])]
    )
    builder = SequenceSetBuilder()
    builder.add("read1", genome[500:8_500])
    reads = builder.build()
    cfg = JEMConfig(k=14, w=20, ell=1000, trials=10, seed=8)
    mapper = JEMMapper(cfg)
    mapper.index(contigs)
    segments, _ = extract_end_segments(reads, cfg.ell)
    result = mapper.map_segments(segments)
    return cfg, contigs, segments, result


def test_paf_fields(mapped_world):
    cfg, contigs, segments, result = mapped_world
    lines = list(paf_records(result, segments, contigs, trials=cfg.trials, k=cfg.k))
    assert len(lines) == result.n_mapped
    fields = lines[0].split("\t")
    assert len(fields) == 13
    qname, qlen, qstart, qend, strand, tname = fields[:6]
    assert qname == "read1/prefix"
    assert int(qlen) == 1000
    assert 0 <= int(qstart) < int(qend) <= 1000
    assert strand in "+-"
    assert tname == "cA"
    tlen, tstart, tend = int(fields[6]), int(fields[7]), int(fields[8])
    assert tlen == 5000
    # read starts at genome 500 -> prefix lands at cA[500:1500]
    assert abs(tstart - 500) < 100
    assert 0 <= tstart < tend <= tlen
    mapq = int(fields[11])
    assert 0 <= mapq <= 60
    assert fields[12].startswith("nh:i:")


def test_paf_suffix_on_second_contig(mapped_world):
    cfg, contigs, segments, result = mapped_world
    lines = list(paf_records(result, segments, contigs, trials=cfg.trials, k=cfg.k))
    suffix = [l for l in lines if l.startswith("read1/suffix")][0]
    fields = suffix.split("\t")
    assert fields[5] == "cB"
    # suffix covers genome [7500, 8500) = cB[2500:3500]
    assert abs(int(fields[7]) - 2_500) < 100


def test_write_paf_file(tmp_path, mapped_world):
    cfg, contigs, segments, result = mapped_world
    path = tmp_path / "out.paf"
    n = write_paf(path, result, segments, contigs, trials=cfg.trials, k=cfg.k)
    assert n == result.n_mapped
    assert len(path.read_text().splitlines()) == n


def test_unmapped_skipped(mapped_world):
    cfg, contigs, segments, _ = mapped_world
    nothing = MappingResult(
        segment_names=list(segments.names),
        subject=np.full(len(segments), -1, dtype=np.int64),
        hit_count=np.zeros(len(segments), dtype=np.int64),
    )
    assert list(paf_records(nothing, segments, contigs, trials=cfg.trials)) == []


def test_length_mismatch_rejected(mapped_world):
    cfg, contigs, segments, result = mapped_world
    bad = MappingResult(["x"], np.array([0]), np.array([1]))
    with pytest.raises(MappingError):
        list(paf_records(bad, segments, contigs, trials=cfg.trials))
