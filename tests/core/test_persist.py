import numpy as np
import pytest

from repro.core import JEMConfig, JEMMapper
from repro.core.persist import INDEX_FORMAT_VERSION, load_index, save_index
from repro.errors import MappingError


CFG = JEMConfig(k=12, w=20, ell=500, trials=7, seed=31)


def test_round_trip(tmp_path, tiling_contigs, clean_reads):
    mapper = JEMMapper(CFG)
    mapper.index(tiling_contigs)
    path = save_index(mapper, tmp_path / "idx")
    assert path.endswith(".npz")

    loaded = load_index(path)
    assert loaded.config == CFG
    assert loaded.subject_names == mapper.subject_names
    for t in range(CFG.trials):
        assert np.array_equal(loaded.table.keys[t], mapper.table.keys[t])
    # mapping through the loaded index is identical
    expected = mapper.map_reads(clean_reads)
    got = loaded.map_reads(clean_reads)
    assert np.array_equal(got.subject, expected.subject)


def test_load_without_suffix(tmp_path, tiling_contigs):
    mapper = JEMMapper(CFG)
    mapper.index(tiling_contigs)
    save_index(mapper, tmp_path / "idx")
    loaded = load_index(tmp_path / "idx")  # suffix auto-appended
    assert loaded.is_indexed


def test_unindexed_mapper_rejected(tmp_path):
    with pytest.raises(MappingError):
        save_index(JEMMapper(CFG), tmp_path / "idx")


def test_truncated_index_is_clear_error(tmp_path, tiling_contigs):
    mapper = JEMMapper(CFG)
    mapper.index(tiling_contigs)
    path = save_index(mapper, tmp_path / "idx")
    raw = open(path, "rb").read()
    with open(path, "wb") as fh:
        fh.write(raw[: len(raw) // 2])
    with pytest.raises(MappingError, match="corrupt|integrity") as excinfo:
        load_index(path)
    assert excinfo.value.__cause__ is not None  # root cause chained


def test_garbage_file_is_clear_error(tmp_path):
    path = tmp_path / "junk.npz"
    path.write_bytes(b"this is not an npz bundle at all")
    with pytest.raises(MappingError):
        load_index(path)


def test_bitflip_fails_checksum(tmp_path, tiling_contigs):
    mapper = JEMMapper(CFG)
    mapper.index(tiling_contigs)
    path = save_index(mapper, tmp_path / "idx")
    with np.load(path) as data:
        payload = {key: data[key] for key in data.files}
    corrupted = payload["trial_000"].copy()
    corrupted[0] ^= 1
    payload["trial_000"] = corrupted
    np.savez_compressed(path, **payload)
    with pytest.raises(MappingError, match="integrity"):
        load_index(path)


def test_missing_key_is_clear_error(tmp_path, tiling_contigs):
    mapper = JEMMapper(CFG)
    mapper.index(tiling_contigs)
    path = save_index(mapper, tmp_path / "idx")
    with np.load(path) as data:
        payload = {key: data[key] for key in data.files if key != "trial_003"}
    np.savez_compressed(path, **payload)
    with pytest.raises(MappingError, match="corrupt"):
        load_index(path)


def test_version_check(tmp_path, tiling_contigs):
    mapper = JEMMapper(CFG)
    mapper.index(tiling_contigs)
    path = save_index(mapper, tmp_path / "idx")
    with np.load(path) as data:
        payload = {key: data[key] for key in data.files}
    payload["format_version"] = np.int64(INDEX_FORMAT_VERSION + 1)
    np.savez_compressed(path, **payload)
    with pytest.raises(MappingError, match="format"):
        load_index(path)
