import os

import numpy as np
import pytest

from repro.core import JEMConfig, JEMMapper
from repro.core.persist import (
    INDEX_FORMAT_VERSION,
    _content_checksum,
    load_index,
    save_index,
)
from repro.errors import IndexCorruptError, MappingError


CFG = JEMConfig(k=12, w=20, ell=500, trials=7, seed=31)

#: Relative positions spanning the whole bundle: header, member data,
#: central directory, and the very tail.
BOUNDARIES = (0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.999)


def _saved_bundle(tmp_path, contigs) -> str:
    mapper = JEMMapper(CFG)
    mapper.index(contigs)
    return save_index(mapper, tmp_path / "idx")


def _v2_bundle(tmp_path, contigs) -> str:
    """A legacy v2 bundle (packed uint64 keys) built by hand."""
    mapper = JEMMapper(CFG)
    mapper.index(contigs)
    store = mapper.table
    keys = [
        np.asarray(store.trial_keys(t), dtype=np.uint64)
        for t in range(store.trials)
    ]
    config_arr = np.array(
        [CFG.k, CFG.w, CFG.ell, CFG.trials, CFG.seed, CFG.min_hits],
        dtype=np.int64,
    )
    names_arr = np.array(mapper.subject_names)
    payload = {
        "format_version": np.int64(2),
        "config": config_arr,
        "n_subjects": np.int64(store.n_subjects),
        "subject_names": names_arr,
        "checksum": np.uint32(
            _content_checksum(config_arr, store.n_subjects, names_arr, keys)
        ),
    }
    for t, k in enumerate(keys):
        payload[f"trial_{t:03d}"] = k
    path = str(tmp_path / "v2.npz")
    np.savez_compressed(path, **payload)
    return path


def test_round_trip(tmp_path, tiling_contigs, clean_reads):
    mapper = JEMMapper(CFG)
    mapper.index(tiling_contigs)
    path = save_index(mapper, tmp_path / "idx")
    assert path.endswith(".npz")

    loaded = load_index(path)
    assert loaded.config == CFG
    assert loaded.subject_names == mapper.subject_names
    for t in range(CFG.trials):
        assert np.array_equal(loaded.table.keys[t], mapper.table.keys[t])
    # mapping through the loaded index is identical
    expected = mapper.map_reads(clean_reads)
    got = loaded.map_reads(clean_reads)
    assert np.array_equal(got.subject, expected.subject)


def test_load_without_suffix(tmp_path, tiling_contigs):
    mapper = JEMMapper(CFG)
    mapper.index(tiling_contigs)
    save_index(mapper, tmp_path / "idx")
    loaded = load_index(tmp_path / "idx")  # suffix auto-appended
    assert loaded.is_indexed


def test_unindexed_mapper_rejected(tmp_path):
    with pytest.raises(MappingError):
        save_index(JEMMapper(CFG), tmp_path / "idx")


def test_truncated_index_is_clear_error(tmp_path, tiling_contigs):
    mapper = JEMMapper(CFG)
    mapper.index(tiling_contigs)
    path = save_index(mapper, tmp_path / "idx")
    raw = open(path, "rb").read()
    with open(path, "wb") as fh:
        fh.write(raw[: len(raw) // 2])
    with pytest.raises(MappingError, match="corrupt|integrity") as excinfo:
        load_index(path)
    assert excinfo.value.__cause__ is not None  # root cause chained


def test_garbage_file_is_clear_error(tmp_path):
    path = tmp_path / "junk.npz"
    path.write_bytes(b"this is not an npz bundle at all")
    with pytest.raises(MappingError):
        load_index(path)


def test_bitflip_fails_checksum(tmp_path, tiling_contigs):
    mapper = JEMMapper(CFG)
    mapper.index(tiling_contigs)
    path = save_index(mapper, tmp_path / "idx")
    with np.load(path) as data:
        payload = {key: data[key] for key in data.files}
    corrupted = payload["trial_000"].copy()
    corrupted[0] ^= 1
    payload["trial_000"] = corrupted
    np.savez_compressed(path, **payload)
    with pytest.raises(MappingError, match="integrity"):
        load_index(path)


def test_missing_key_is_clear_error(tmp_path, tiling_contigs):
    mapper = JEMMapper(CFG)
    mapper.index(tiling_contigs)
    path = save_index(mapper, tmp_path / "idx")
    with np.load(path) as data:
        payload = {key: data[key] for key in data.files if key != "trial_003"}
    np.savez_compressed(path, **payload)
    with pytest.raises(MappingError, match="corrupt"):
        load_index(path)


@pytest.mark.parametrize("bundle", ["v3", "v2"])
@pytest.mark.parametrize("fraction", BOUNDARIES)
def test_truncation_at_every_boundary_is_typed_with_offset(
    tmp_path, tiling_contigs, bundle, fraction
):
    build = _saved_bundle if bundle == "v3" else _v2_bundle
    path = build(tmp_path, tiling_contigs)
    raw = open(path, "rb").read()
    cut = max(1, int(len(raw) * fraction))
    with open(path, "wb") as fh:
        fh.write(raw[:cut])
    with pytest.raises(IndexCorruptError) as excinfo:
        load_index(path)
    # truncation kills the central directory: localised to the cut point
    assert excinfo.value.path == path
    assert excinfo.value.offset == cut
    assert "rebuild the index" in str(excinfo.value)


@pytest.mark.parametrize("bundle", ["v3", "v2"])
@pytest.mark.parametrize("fraction", BOUNDARIES)
def test_bitflip_at_every_boundary_never_maps_silently_wrong(
    tmp_path, tiling_contigs, bundle, fraction
):
    """A single flipped byte either raises typed or provably changed nothing.

    Flips landing in zip bookkeeping (timestamps, attributes) decode to
    the same content — those must load with trial columns bit-identical
    to the pristine bundle.  Any flip that reaches decoded content must
    surface as :class:`IndexCorruptError`, never a wrong mapping.
    """
    build = _saved_bundle if bundle == "v3" else _v2_bundle
    path = build(tmp_path, tiling_contigs)
    pristine = load_index(path)
    raw = bytearray(open(path, "rb").read())
    offset = min(int(len(raw) * fraction), len(raw) - 1)
    raw[offset] ^= 0xFF
    with open(path, "wb") as fh:
        fh.write(bytes(raw))
    try:
        loaded = load_index(path)
    except IndexCorruptError as exc:
        assert exc.path == path
    else:
        assert loaded.config == pristine.config
        assert loaded.subject_names == pristine.subject_names
        for t in range(loaded.config.trials):
            assert np.array_equal(
                loaded.table.trial_keys(t), pristine.table.trial_keys(t)
            )


def test_member_bitflip_localises_to_an_offset(tmp_path, tiling_contigs):
    path = _saved_bundle(tmp_path, tiling_contigs)
    raw = bytearray(open(path, "rb").read())
    raw[len(raw) // 2] ^= 0xFF  # inside some member's compressed data
    with open(path, "wb") as fh:
        fh.write(bytes(raw))
    with pytest.raises(IndexCorruptError) as excinfo:
        load_index(path)
    assert isinstance(excinfo.value.offset, int)
    assert 0 <= excinfo.value.offset <= len(raw)
    assert "offset" in str(excinfo.value)


def test_corrupt_v2_checksum_refuses_migration(tmp_path, tiling_contigs):
    path = _v2_bundle(tmp_path, tiling_contigs)
    with np.load(path) as data:
        payload = {key: data[key] for key in data.files}
    flipped = payload["trial_000"].copy()
    flipped[0] ^= np.uint64(1)
    payload["trial_000"] = flipped
    np.savez_compressed(path, **payload)
    with pytest.raises(IndexCorruptError, match="integrity"):
        load_index(path)


def test_save_is_atomic_and_tolerates_stale_tmp(tmp_path, tiling_contigs):
    path = _saved_bundle(tmp_path, tiling_contigs)
    first = load_index(path)
    # a crashed earlier save can leave a stale tmp sibling behind
    stale = path + ".tmp.99999"
    with open(stale, "wb") as fh:
        fh.write(b"half-written garbage")
    loaded = load_index(path)  # the committed bundle is unaffected
    assert loaded.subject_names == first.subject_names
    # re-saving over the live bundle commits whole-file via rename
    mapper = JEMMapper(CFG)
    mapper.index(tiling_contigs)
    save_index(mapper, path)
    assert load_index(path).subject_names == first.subject_names
    assert not [
        name
        for name in os.listdir(os.path.dirname(path))
        if ".tmp." in name and name != os.path.basename(stale)
    ]


def test_version_check(tmp_path, tiling_contigs):
    mapper = JEMMapper(CFG)
    mapper.index(tiling_contigs)
    path = save_index(mapper, tmp_path / "idx")
    with np.load(path) as data:
        payload = {key: data[key] for key in data.files}
    payload["format_version"] = np.int64(INDEX_FORMAT_VERSION + 1)
    np.savez_compressed(path, **payload)
    with pytest.raises(MappingError, match="format"):
        load_index(path)
