import numpy as np
import pytest

from repro.core import PREFIX, SUFFIX, extract_end_segments
from repro.errors import SequenceError
from repro.seq import SequenceSet, SequenceSetBuilder, decode, encode


def test_basic_extraction():
    reads = SequenceSet.from_strings([("r", "a" * 100 + "c" * 100 + "g" * 100)])
    segments, infos = extract_end_segments(reads, 100)
    assert len(segments) == 2
    assert segments.names == ["r/prefix", "r/suffix"]
    assert segments[0].sequence == "a" * 100
    assert segments[1].sequence == "g" * 100
    assert infos[0].kind == PREFIX and infos[1].kind == SUFFIX
    assert infos[0].read_index == infos[1].read_index == 0


def test_two_segments_per_read():
    reads = SequenceSet.from_strings([(f"r{i}", "acgt" * 100) for i in range(5)])
    segments, infos = extract_end_segments(reads, 50)
    assert len(segments) == 10
    assert [si.read_index for si in infos] == [0, 0, 1, 1, 2, 2, 3, 3, 4, 4]


def test_short_read_uses_whole_sequence():
    reads = SequenceSet.from_strings([("short", "acgtacgt")])
    segments, _ = extract_end_segments(reads, 100)
    assert segments[0].sequence == "acgtacgt"
    assert segments[1].sequence == "acgtacgt"


def test_empty_read_rejected():
    reads = SequenceSet(
        np.empty(0, dtype=np.uint8), np.array([0, 0], dtype=np.int64), ["bad"]
    )
    with pytest.raises(SequenceError):
        extract_end_segments(reads, 10)


def test_bad_ell():
    reads = SequenceSet.from_strings([("r", "acgt")])
    with pytest.raises(SequenceError):
        extract_end_segments(reads, 0)


def test_truth_coordinates_forward():
    builder = SequenceSetBuilder()
    builder.add_string("r", "a" * 500, {"ref_start": 1000, "ref_end": 1500, "ref_strand": 1})
    segments, _ = extract_end_segments(builder.build(), 100)
    assert segments.metas[0]["ref_start"] == 1000
    assert segments.metas[0]["ref_end"] == 1100
    assert segments.metas[1]["ref_start"] == 1400
    assert segments.metas[1]["ref_end"] == 1500


def test_truth_coordinates_reverse_strand():
    builder = SequenceSetBuilder()
    builder.add_string("r", "a" * 500, {"ref_start": 1000, "ref_end": 1500, "ref_strand": -1})
    segments, _ = extract_end_segments(builder.build(), 100)
    # Reverse-strand read: its prefix is the reference END.
    assert segments.metas[0]["ref_start"] == 1400
    assert segments.metas[0]["ref_end"] == 1500
    assert segments.metas[1]["ref_start"] == 1000
    assert segments.metas[1]["ref_end"] == 1100


def test_no_truth_meta_ok():
    reads = SequenceSet.from_strings([("r", "acgt" * 50)])
    segments, _ = extract_end_segments(reads, 10)
    assert "ref_start" not in segments.metas[0]
    assert segments.metas[0]["kind"] == PREFIX
