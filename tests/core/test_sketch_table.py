import numpy as np
import pytest

from repro.core import SketchTable
from repro.errors import SketchError
from repro.sketch import pack_key


def make_table():
    # trial 0: value 5 -> subjects {0, 2}; value 9 -> {1}
    # trial 1: value 5 -> {1}
    t0 = np.sort(
        pack_key(np.array([5, 5, 9], dtype=np.uint64), np.array([0, 2, 1], dtype=np.uint64))
    )
    t1 = pack_key(np.array([5], dtype=np.uint64), np.array([1], dtype=np.uint64))
    return SketchTable([t0, t1], n_subjects=3)


def test_lookup_trial():
    table = make_table()
    hits = table.lookup_trial(0, np.array([5, 7, 9], dtype=np.uint64))
    pairs = set(zip(hits.query_index.tolist(), hits.subjects.tolist()))
    assert pairs == {(0, 0), (0, 2), (2, 1)}


def test_lookup_scalar():
    table = make_table()
    assert set(table.lookup_scalar(0, 5).tolist()) == {0, 2}
    assert table.lookup_scalar(1, 9).size == 0


def test_lookup_bad_trial():
    with pytest.raises(SketchError):
        make_table().lookup_trial(5, np.array([1], dtype=np.uint64))


def test_values_of_trial():
    table = make_table()
    assert list(table.values_of_trial(0)) == [5, 9]


def test_union_merges_disjoint_parts():
    t_a = [pack_key(np.array([5], dtype=np.uint64), np.array([0], dtype=np.uint64))]
    t_b = [pack_key(np.array([5], dtype=np.uint64), np.array([1], dtype=np.uint64))]
    merged = SketchTable.union(
        [SketchTable(t_a, n_subjects=1), SketchTable(t_b, n_subjects=2)]
    )
    assert merged.n_subjects == 2
    assert set(merged.lookup_scalar(0, 5).tolist()) == {0, 1}


def test_union_trial_mismatch():
    a = SketchTable([np.empty(0, dtype=np.uint64)], 1)
    b = SketchTable([np.empty(0, dtype=np.uint64)] * 2, 1)
    with pytest.raises(SketchError):
        SketchTable.union([a, b])


def test_unsorted_rejected():
    bad = np.array([9, 1], dtype=np.uint64)
    with pytest.raises(SketchError):
        SketchTable([bad], 1)


def test_nbytes_and_entries():
    table = make_table()
    assert table.total_entries == 4
    assert table.nbytes == 4 * 8
    assert table.trials == 2
