"""SketchStore protocol conformance and three-way layout parity."""

import numpy as np
import pytest

from repro.core import SketchTable
from repro.core.store import (
    DEFAULT_STORE_KIND,
    STORE_KINDS,
    ColumnarSketchStore,
    DictSketchStore,
    SketchStore,
    StoreShard,
    build_store,
    lookup_trial_sharded,
    shard_bounds,
    store_from_table,
)
from repro.errors import SketchError

TRIALS = 5
N_SUBJECTS = 40


def _random_trial_keys(rng, trials=TRIALS, n_subjects=N_SUBJECTS, per_trial=300):
    """Sorted, deduplicated packed (value << 32 | subject) arrays."""
    keys = []
    for _ in range(trials):
        values = rng.integers(0, 500, size=per_trial, dtype=np.uint64)
        subjects = rng.integers(0, n_subjects, size=per_trial, dtype=np.uint64)
        keys.append(np.unique((values << np.uint64(32)) | subjects))
    return keys


@pytest.fixture
def trial_keys(rng):
    return _random_trial_keys(rng)


@pytest.fixture
def queries(rng):
    # mix of hitting and missing values
    return rng.integers(0, 700, size=200, dtype=np.uint64)


def _stores(trial_keys):
    return {kind: build_store(kind, trial_keys, N_SUBJECTS) for kind in STORE_KINDS}


def test_default_kind_is_columnar():
    assert DEFAULT_STORE_KIND == "columnar"
    assert STORE_KINDS[0] == "columnar"


@pytest.mark.parametrize("kind", STORE_KINDS)
def test_protocol_conformance(kind, trial_keys):
    store = build_store(kind, trial_keys, N_SUBJECTS)
    assert isinstance(store, SketchStore)
    assert store.trials == TRIALS
    assert store.n_subjects == N_SUBJECTS
    assert store.total_entries == sum(k.size for k in trial_keys)
    assert store.nbytes > 0
    for t in range(TRIALS):
        assert np.array_equal(store.trial_keys(t), trial_keys[t])


@pytest.mark.parametrize("kind", ("columnar", "dict"))
def test_lookup_parity_with_packed(kind, trial_keys, queries):
    """Every layout answers batch lookups bit-identically to the packed table."""
    packed = build_store("packed", trial_keys, N_SUBJECTS)
    other = build_store(kind, trial_keys, N_SUBJECTS)
    for t in range(TRIALS):
        want = packed.lookup_trial(t, queries)
        got = other.lookup_trial(t, queries)
        assert np.array_equal(want.query_index, got.query_index)
        assert np.array_equal(want.subjects, got.subjects)


@pytest.mark.parametrize("kind", STORE_KINDS)
def test_lookup_scalar_matches_batch(kind, trial_keys):
    store = build_store(kind, trial_keys, N_SUBJECTS)
    value = int(store.values_of_trial(0)[0])
    subjects = store.lookup_scalar(0, value)
    batch = store.lookup_trial(0, np.array([value], dtype=np.uint64))
    assert np.array_equal(subjects, batch.subjects)
    assert subjects.size > 0


@pytest.mark.parametrize("kind", STORE_KINDS)
def test_values_of_trial_sorted_unique(kind, trial_keys):
    store = build_store(kind, trial_keys, N_SUBJECTS)
    for t in range(TRIALS):
        values = store.values_of_trial(t)
        assert np.array_equal(values, np.unique(values))


def test_as_table_roundtrip(trial_keys):
    for kind in ("columnar", "dict"):
        store = build_store(kind, trial_keys, N_SUBJECTS)
        table = store.as_table()
        assert isinstance(table, SketchTable)
        for t in range(TRIALS):
            assert np.array_equal(table.keys[t], trial_keys[t])


def test_store_from_table(trial_keys):
    table = SketchTable(trial_keys, N_SUBJECTS)
    assert store_from_table("packed", table) is table
    for kind in ("columnar", "dict"):
        store = store_from_table(kind, table)
        assert store.total_entries == table.total_entries
        for t in range(TRIALS):
            assert np.array_equal(store.trial_keys(t), trial_keys[t])


def test_export_import_columns_roundtrip(trial_keys, queries):
    store = ColumnarSketchStore.from_trial_keys(trial_keys, N_SUBJECTS)
    columns = store.export_columns()
    assert len(columns) == 2 * TRIALS
    rebuilt = ColumnarSketchStore.from_columns(columns, N_SUBJECTS)
    for t in range(TRIALS):
        want = store.lookup_trial(t, queries)
        got = rebuilt.lookup_trial(t, queries)
        assert np.array_equal(want.query_index, got.query_index)
        assert np.array_equal(want.subjects, got.subjects)
    # the rebuilt store shares the exported buffers (zero-copy attach)
    assert rebuilt.values[0] is columns[0]


def test_columnar_nbytes_much_smaller_than_dict(trial_keys):
    columnar = build_store("columnar", trial_keys, N_SUBJECTS)
    dictstore = build_store("dict", trial_keys, N_SUBJECTS)
    assert columnar.nbytes * 2 <= dictstore.nbytes


def test_sharding_parity(trial_keys, queries):
    """Partitioned lookup over key-range shards equals the unsharded one."""
    store = ColumnarSketchStore.from_trial_keys(trial_keys, N_SUBJECTS)
    for n_shards in (1, 3, 4):
        shards = store.shard(n_shards)
        assert len(shards) == n_shards
        assert all(isinstance(s, StoreShard) for s in shards)
        assert sum(s.store.total_entries for s in shards) == store.total_entries
        for t in range(TRIALS):
            want = store.lookup_trial(t, queries)
            got = lookup_trial_sharded(shards, t, queries)
            assert np.array_equal(want.query_index, got.query_index)
            assert np.array_equal(want.subjects, got.subjects)


def test_shard_bounds_cover_value_space(trial_keys):
    store = ColumnarSketchStore.from_trial_keys(trial_keys, N_SUBJECTS)
    bounds = shard_bounds(store, 4)
    assert bounds[0] == 0
    assert bounds[-1] == 1 << 32
    assert (np.diff(bounds) >= 0).all()


def test_shard_bounds_empty_store():
    empty = [np.empty(0, dtype=np.uint64) for _ in range(2)]
    store = ColumnarSketchStore.from_trial_keys(empty, 1)
    bounds = shard_bounds(store, 3)
    assert bounds[0] == 0 and bounds[-1] == 1 << 32
    assert (np.diff(bounds) >= 0).all()


def test_shard_bounds_duplicate_boundaries_from_skewed_values():
    """All entries share one value: interior bounds collapse onto it, some
    shards own an empty range, and the partitioned lookup still matches."""
    values = np.full(60, 7, dtype=np.uint64)
    subjects = np.arange(60, dtype=np.uint64) % 9
    keys = [np.unique((values << np.uint64(32)) | subjects)]
    store = ColumnarSketchStore.from_trial_keys(keys, 9)
    bounds = shard_bounds(store, 4)
    assert (np.diff(bounds) >= 0).all()
    assert (bounds[1:-1] == 7).all()  # every interior bound is the hot value
    shards = store.shard(4)
    assert sum(s.store.total_entries for s in shards) == store.total_entries
    assert sum(1 for s in shards if s.store.total_entries == 0) >= 2
    queries = np.array([0, 6, 7, 8, (1 << 32) - 1], dtype=np.uint64)
    want = store.lookup_trial(0, queries)
    got = lookup_trial_sharded(shards, 0, queries)
    assert np.array_equal(want.query_index, got.query_index)
    assert np.array_equal(want.subjects, got.subjects)


def test_more_shards_than_distinct_values(rng):
    """n_shards exceeding the distinct-value count leaves empty shards but
    loses no entries and changes no answers."""
    values = rng.integers(0, 3, size=40, dtype=np.uint64)  # ≤ 3 distinct
    subjects = rng.integers(0, 5, size=40, dtype=np.uint64)
    keys = [np.unique((values << np.uint64(32)) | subjects) for _ in range(2)]
    store = ColumnarSketchStore.from_trial_keys(keys, 5)
    shards = store.shard(6)
    assert len(shards) == 6
    assert sum(s.store.total_entries for s in shards) == store.total_entries
    queries = np.arange(8, dtype=np.uint64)
    for t in range(2):
        want = store.lookup_trial(t, queries)
        got = lookup_trial_sharded(shards, t, queries)
        assert np.array_equal(want.query_index, got.query_index)
        assert np.array_equal(want.subjects, got.subjects)


def test_single_trial_store_sharding(rng):
    """The T=1 degenerate store shards and stitches like any other."""
    values = rng.integers(0, 200, size=150, dtype=np.uint64)
    subjects = rng.integers(0, N_SUBJECTS, size=150, dtype=np.uint64)
    keys = [np.unique((values << np.uint64(32)) | subjects)]
    store = ColumnarSketchStore.from_trial_keys(keys, N_SUBJECTS)
    assert store.trials == 1
    bounds = shard_bounds(store, 3)
    assert bounds.shape == (4,)
    shards = store.shard(3)
    queries = rng.integers(0, 250, size=60, dtype=np.uint64)
    want = store.lookup_trial(0, queries)
    got = lookup_trial_sharded(shards, 0, queries)
    assert np.array_equal(want.query_index, got.query_index)
    assert np.array_equal(want.subjects, got.subjects)


def test_empty_store_shards_answer_nothing():
    empty = [np.empty(0, dtype=np.uint64) for _ in range(2)]
    store = ColumnarSketchStore.from_trial_keys(empty, 1)
    shards = store.shard(3)
    queries = np.arange(10, dtype=np.uint64)
    hits = lookup_trial_sharded(shards, 0, queries)
    assert len(hits.query_index) == 0 and len(hits.subjects) == 0


def test_unknown_kind_rejected(trial_keys):
    with pytest.raises(SketchError):
        build_store("btree", trial_keys, N_SUBJECTS)
    with pytest.raises(SketchError):
        store_from_table("btree", SketchTable(trial_keys, N_SUBJECTS))


def test_trial_out_of_range(trial_keys):
    for kind in STORE_KINDS:
        store = build_store(kind, trial_keys, N_SUBJECTS)
        with pytest.raises(SketchError):
            store.lookup_trial(TRIALS, np.array([1], dtype=np.uint64))


def test_oversized_query_values_rejected(trial_keys):
    store = ColumnarSketchStore.from_trial_keys(trial_keys, N_SUBJECTS)
    with pytest.raises(SketchError):
        store.lookup_trial(0, np.array([1 << 33], dtype=np.uint64))


def test_unsorted_columns_rejected():
    values = [np.array([5, 3], dtype=np.uint32)]
    subjects = [np.array([0, 1], dtype=np.uint32)]
    with pytest.raises(SketchError):
        ColumnarSketchStore(values, subjects, 2)


def test_mismatched_columns_rejected():
    with pytest.raises(SketchError):
        ColumnarSketchStore(
            [np.array([1], dtype=np.uint32)],
            [np.array([1, 2], dtype=np.uint32)],
            2,
        )
    with pytest.raises(SketchError):
        ColumnarSketchStore.from_columns([np.array([1], dtype=np.uint32)], 2)


def test_empty_lookup(trial_keys):
    for kind in STORE_KINDS:
        store = build_store(kind, trial_keys, N_SUBJECTS)
        hits = store.lookup_trial(0, np.empty(0, dtype=np.uint64))
        assert len(hits) == 0


def test_dict_store_wraps_table(trial_keys):
    table = SketchTable(trial_keys, N_SUBJECTS)
    store = DictSketchStore(table)
    assert store.as_table() is table
    assert store.keys is table.keys
