import numpy as np
import pytest

from repro.core import JEMConfig, JEMMapper
from repro.core.streaming import map_file, map_reads_stream
from repro.errors import MappingError
from repro.seq import write_fastq


CFG = JEMConfig(k=12, w=20, ell=500, trials=8, seed=13)


@pytest.fixture
def mapper(tiling_contigs):
    m = JEMMapper(CFG)
    m.index(tiling_contigs)
    return m


def test_stream_matches_bulk(mapper, clean_reads):
    bulk = mapper.map_reads(clean_reads)
    streamed_subjects = []
    streamed_names = []
    for batch in map_reads_stream(mapper, iter(clean_reads), batch_size=7):
        streamed_subjects.append(batch.subject)
        streamed_names.extend(batch.segment_names)
    assert np.array_equal(np.concatenate(streamed_subjects), bulk.subject)
    assert streamed_names == bulk.segment_names


def test_batch_count(mapper, clean_reads):
    batches = list(map_reads_stream(mapper, iter(clean_reads), batch_size=7))
    n = len(clean_reads)
    assert len(batches) == -(-n // 7)
    assert sum(len(b) for b in batches) == 2 * n


def test_batch_size_one(mapper, clean_reads):
    batches = list(map_reads_stream(mapper, iter(clean_reads), batch_size=1))
    assert len(batches) == len(clean_reads)
    assert all(len(b) == 2 for b in batches)


def test_empty_stream(mapper):
    assert list(map_reads_stream(mapper, iter([]), batch_size=5)) == []


def test_requires_index(clean_reads):
    with pytest.raises(MappingError):
        list(map_reads_stream(JEMMapper(CFG), iter(clean_reads)))


def test_bad_batch_size(mapper, clean_reads):
    with pytest.raises(MappingError):
        list(map_reads_stream(mapper, iter(clean_reads), batch_size=0))


def test_map_file_fastq(tmp_path, mapper, clean_reads):
    path = tmp_path / "reads.fastq"
    write_fastq(path, clean_reads)
    bulk = mapper.map_reads(clean_reads)
    got = np.concatenate(
        [batch.subject for batch in map_file(mapper, str(path), batch_size=6)]
    )
    assert np.array_equal(got, bulk.subject)
