"""Property: the sketch table's searchsorted lookup equals brute force."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SketchTable
from repro.sketch import pack_key


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_lookup_matches_brute_force(data):
    n_pairs = data.draw(st.integers(min_value=0, max_value=40))
    values = st.integers(min_value=0, max_value=15)
    subjects = st.integers(min_value=0, max_value=7)
    pairs = {
        (data.draw(values), data.draw(subjects)) for _ in range(n_pairs)
    }
    if pairs:
        v = np.array([p[0] for p in pairs], dtype=np.uint64)
        s = np.array([p[1] for p in pairs], dtype=np.uint64)
        keys = np.unique(pack_key(v, s))
    else:
        keys = np.empty(0, dtype=np.uint64)
    table = SketchTable([keys], n_subjects=8)

    n_queries = data.draw(st.integers(min_value=1, max_value=12))
    qv = np.array([data.draw(values) for _ in range(n_queries)], dtype=np.uint64)
    hits = table.lookup_trial(0, qv)
    got = set(zip(hits.query_index.tolist(), hits.subjects.tolist()))
    expected = {
        (qi, subj)
        for qi in range(n_queries)
        for (val, subj) in pairs
        if val == qv[qi]
    }
    assert got == expected


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=100),
            st.integers(min_value=0, max_value=20),
        ),
        max_size=50,
    )
)
def test_values_of_trial_is_distinct_sorted(pairs):
    if pairs:
        v = np.array([p[0] for p in pairs], dtype=np.uint64)
        s = np.array([p[1] for p in pairs], dtype=np.uint64)
        keys = np.unique(pack_key(v, s))
    else:
        keys = np.empty(0, dtype=np.uint64)
    table = SketchTable([keys], n_subjects=21)
    vals = table.values_of_trial(0)
    assert sorted(set(vals.tolist())) == vals.tolist()
    assert set(vals.tolist()) == {p[0] for p in pairs}
