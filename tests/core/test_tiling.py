import numpy as np
import pytest

from repro.core import JEMConfig, JEMMapper
from repro.core.tiling import extract_tiled_segments, map_reads_tiled
from repro.errors import SequenceError
from repro.seq import SeqRecord, SequenceSet, SequenceSetBuilder, random_codes


def test_tiling_covers_whole_read():
    reads = SequenceSet.from_strings([("r", "acgt" * 1000)])  # 4000 bp
    segments, infos = extract_tiled_segments(reads, 1000)
    # tiles at 0, 1000, 2000, 3000
    assert [ti.offset for ti in infos] == [0, 1000, 2000, 3000]
    assert all(len(segments.codes_of(i)) == 1000 for i in range(len(segments)))


def test_last_tile_clamped():
    reads = SequenceSet.from_strings([("r", "a" * 2500)])
    segments, infos = extract_tiled_segments(reads, 1000)
    assert [ti.offset for ti in infos] == [0, 1000, 1500]


def test_stride_override():
    reads = SequenceSet.from_strings([("r", "a" * 3000)])
    _, infos = extract_tiled_segments(reads, 1000, stride=500)
    assert [ti.offset for ti in infos] == [0, 500, 1000, 1500, 2000]


def test_short_read_single_tile():
    reads = SequenceSet.from_strings([("r", "acgtacgt")])
    segments, infos = extract_tiled_segments(reads, 1000)
    assert len(segments) == 1
    assert segments[0].sequence == "acgtacgt"


def test_truth_coordinates_forward_and_reverse():
    builder = SequenceSetBuilder()
    builder.add_string("f", "a" * 3000, {"ref_start": 100, "ref_end": 3100, "ref_strand": 1})
    builder.add_string("r", "a" * 3000, {"ref_start": 100, "ref_end": 3100, "ref_strand": -1})
    segments, infos = extract_tiled_segments(builder.build(), 1000)
    # forward read: tile at offset 1000 covers ref [1100, 2100)
    fwd_metas = [m for m, ti in zip(segments.metas, infos) if ti.read_index == 0]
    assert fwd_metas[1]["ref_start"] == 1100 and fwd_metas[1]["ref_end"] == 2100
    # reverse read: tile at offset 0 is the reference END
    rev_metas = [m for m, ti in zip(segments.metas, infos) if ti.read_index == 1]
    assert rev_metas[0]["ref_end"] == 3100
    assert rev_metas[0]["ref_start"] == 2100


def test_invalid_args():
    reads = SequenceSet.from_strings([("r", "acgt")])
    with pytest.raises(SequenceError):
        extract_tiled_segments(reads, 0)
    with pytest.raises(SequenceError):
        extract_tiled_segments(reads, 100, stride=0)


def test_contained_contig_found_only_by_tiling(rng):
    """The paper's stated limitation: a contig inside the read interior is
    invisible to end segments but recovered by interior tiles."""
    genome = random_codes(12_000, rng)
    # contig B sits wholly inside the read interior [4500, 6500]
    contigs = SequenceSet.from_records(
        [
            SeqRecord("A", genome[0:3_000]),
            SeqRecord("B", genome[4_500:6_500]),
            SeqRecord("C", genome[8_000:11_000]),
        ]
    )
    builder = SequenceSetBuilder()
    builder.add("read", genome[1_000:11_000])  # 10 kbp spanning all three
    reads = builder.build()

    cfg = JEMConfig(k=14, w=20, ell=1000, trials=12, seed=3)
    mapper = JEMMapper(cfg)
    mapper.index(contigs)

    ends = mapper.map_reads(reads)
    end_hits = {int(s) for s in ends.subject if s >= 0}
    assert 1 not in end_hits  # contig B missed by end segments

    covered = map_reads_tiled(mapper, reads)
    assert 1 in covered[0]  # ...but found by interior tiles
    assert 0 in covered[0] and 2 in covered[0]


def test_min_tile_hits_filter(rng):
    genome = random_codes(8_000, rng)
    contigs = SequenceSet.from_records([SeqRecord("A", genome[0:8_000])])
    builder = SequenceSetBuilder()
    builder.add("read", genome[0:8_000])
    cfg = JEMConfig(k=14, w=20, ell=1000, trials=8, seed=3)
    mapper = JEMMapper(cfg)
    mapper.index(contigs)
    covered = map_reads_tiled(mapper, builder.build(), min_tile_hits=3)
    assert covered[0].get(0, 0) >= 3
