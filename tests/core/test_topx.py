import numpy as np
import pytest

from repro.core import SketchTable, count_hits_vectorised
from repro.core.topx import TopHits, count_hits_topx
from repro.errors import MappingError
from repro.sketch import pack_key


def build_table(per_trial_pairs, n_subjects):
    keys = []
    for pairs in per_trial_pairs:
        if pairs:
            v = np.array([p[0] for p in pairs], dtype=np.uint64)
            s = np.array([p[1] for p in pairs], dtype=np.uint64)
            keys.append(np.unique(pack_key(v, s)))
        else:
            keys.append(np.empty(0, dtype=np.uint64))
    return SketchTable(keys, n_subjects)


@pytest.fixture
def table():
    # query value 5 collides: subject 1 in 3 trials, subject 0 in 2, subject 2 in 1
    return build_table(
        [
            [(5, 0), (5, 1), (5, 2)],
            [(5, 0), (5, 1)],
            [(5, 1)],
        ],
        n_subjects=3,
    )


def test_ranking(table):
    qv = np.full((3, 1), 5, dtype=np.uint64)
    hits = count_hits_topx(table, qv, x=3)
    assert hits.subjects[0].tolist() == [1, 0, 2]
    assert hits.counts[0].tolist() == [3, 2, 1]


def test_rank0_matches_best_hit(table):
    qv = np.full((3, 1), 5, dtype=np.uint64)
    top = count_hits_topx(table, qv, x=2)
    best = count_hits_vectorised(table, qv)
    assert top.best[0] == best.subject[0]
    assert top.counts[0, 0] == best.count[0]


def test_x_truncates(table):
    qv = np.full((3, 1), 5, dtype=np.uint64)
    hits = count_hits_topx(table, qv, x=1)
    assert hits.x == 1
    assert hits.subjects[0].tolist() == [1]


def test_unused_slots(table):
    qv = np.full((3, 1), 5, dtype=np.uint64)
    hits = count_hits_topx(table, qv, x=5)
    assert hits.subjects[0].tolist() == [1, 0, 2, -1, -1]
    assert hits.counts[0, 3:].tolist() == [0, 0]


def test_no_collisions(table):
    qv = np.full((3, 1), 999, dtype=np.uint64)
    hits = count_hits_topx(table, qv, x=3)
    assert (hits.subjects == -1).all()


def test_query_mask(table):
    qv = np.full((3, 2), 5, dtype=np.uint64)
    hits = count_hits_topx(table, qv, x=2, query_mask=np.array([True, False]))
    assert hits.subjects[0, 0] == 1
    assert (hits.subjects[1] == -1).all()


def test_min_hits(table):
    qv = np.full((3, 1), 5, dtype=np.uint64)
    hits = count_hits_topx(table, qv, x=3, min_hits=2)
    assert hits.subjects[0].tolist() == [1, 0, -1]  # subject 2 had 1 < 2 hits


def test_bad_x(table):
    with pytest.raises(MappingError):
        count_hits_topx(table, np.zeros((3, 1), dtype=np.uint64), x=0)


def test_hit_any():
    hits = TopHits(
        subjects=np.array([[1, 0], [2, -1], [-1, -1]], dtype=np.int64),
        counts=np.array([[3, 1], [2, 0], [0, 0]], dtype=np.int64),
    )
    # truth: query 0 -> subject 0; query 1 -> subject 7
    def truth(q, s):
        return (q == 0) & (s == 0)

    assert hits.hit_any(truth).tolist() == [True, False, False]


def test_recall_at_x_monotone(tiling_contigs, clean_reads):
    """recall@x is non-decreasing in x and >= recall@1."""
    from repro.core import JEMConfig, JEMMapper, extract_end_segments
    from repro.eval import build_benchmark
    from repro.eval.metrics import recall_at_x

    cfg = JEMConfig(k=12, w=20, ell=500, trials=10, seed=1)
    mapper = JEMMapper(cfg)
    mapper.index(tiling_contigs)
    segments, _ = extract_end_segments(clean_reads, cfg.ell)
    # build a truth benchmark from the tiling construction
    genome_len = 20_000
    import numpy as np

    from repro.eval.truth import Benchmark

    # use the standard builder against the known genome
    from repro.seq import random_codes

    rng = np.random.default_rng(12345)
    genome = random_codes(genome_len, rng)
    bench = build_benchmark(segments, tiling_contigs, genome, k=cfg.k)
    recalls = []
    for x in (1, 2, 4):
        hits = mapper.map_segments_topx(segments, x=x)
        recalls.append(recall_at_x(hits, bench))
    assert recalls[0] <= recalls[1] <= recalls[2]
    assert recalls[0] > 0.5
