import numpy as np
import pytest

from repro.core import JEMConfig, JEMMapper
from repro.core.mapper import MappingResult
from repro.errors import MappingError
from repro.eval.coverage import contig_coverage
from repro.seq import SequenceSet


def make_result(subjects):
    subjects = np.asarray(subjects, dtype=np.int64)
    return MappingResult(
        [f"s{i}" for i in range(subjects.size)],
        subjects,
        (subjects >= 0).astype(np.int64),
    )


def make_contigs(n):
    return SequenceSet.from_strings([(f"c{i}", "acgt" * 50) for i in range(n)])


def test_counts():
    cov = contig_coverage(make_result([0, 0, 1, -1, 2, 2, 2]), make_contigs(4))
    assert cov.hits.tolist() == [2, 1, 3, 0]
    assert cov.n_segments == 6
    assert cov.dark_contigs.tolist() == [3]
    assert cov.dark_fraction == 0.25
    assert cov.max_hits == 3


def test_all_dark():
    cov = contig_coverage(make_result([-1, -1]), make_contigs(3))
    assert cov.dark_fraction == 1.0
    assert cov.mean_hits == 0.0


def test_out_of_range_rejected():
    with pytest.raises(MappingError):
        contig_coverage(make_result([5]), make_contigs(2))


def test_empty_contigs_rejected():
    with pytest.raises(MappingError):
        contig_coverage(make_result([0]), SequenceSet.empty())


def test_report_format():
    cov = contig_coverage(make_result([0, 1, 1]), make_contigs(2))
    report = cov.format_report(["alpha", "beta"])
    assert "dark contigs" in report
    assert "beta: 2" in report


def test_real_mapping_covers_most_contigs(tiling_contigs, clean_reads):
    mapper = JEMMapper(JEMConfig(k=12, w=20, ell=500, trials=10, seed=6))
    mapper.index(tiling_contigs)
    result = mapper.map_reads(clean_reads)
    cov = contig_coverage(result, tiling_contigs)
    assert cov.n_segments == result.n_mapped
    assert cov.dark_fraction < 0.6  # 20 reads over 20kb leave some gaps at most
