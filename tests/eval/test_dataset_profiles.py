"""Profile-level behaviour of the dataset registry (no full generation)."""

import pytest

from repro.eval.datasets import DATASETS, MIN_GENOME, DatasetSpec


def test_genome_length_floor():
    spec = DATASETS["e_coli"]
    assert spec.genome_length(1e-9) == MIN_GENOME
    assert spec.genome_length(1.0) == spec.full_genome_length


def test_hifi_median_clamped_for_tiny_genomes():
    spec = DATASETS["o_sativa_chr8"]  # 19.6 kbp median reads
    tiny = spec.hifi_profile(1e-9)  # genome floors at 100 kbp
    assert tiny.median_length <= MIN_GENOME // 4
    assert tiny.min_length <= tiny.median_length
    big = spec.hifi_profile(1.0)
    assert big.median_length == 19_600


def test_profiles_construct():
    for name, spec in DATASETS.items():
        gp = spec.genome_profile(0.01)
        ip = spec.illumina_profile()
        ac = spec.assembly_config()
        hp = spec.hifi_profile(0.01)
        assert gp.length >= MIN_GENOME
        assert ip.read_length == 100
        assert ac.k % 2 == 1
        assert hp.coverage > 0


def test_eukaryotes_more_repetitive_than_bacteria():
    assert DATASETS["human_chr7"].repeat_fraction > 5 * DATASETS["e_coli"].repeat_fraction
    assert DATASETS["c_elegans"].repeat_fraction > DATASETS["e_coli"].repeat_fraction


def test_table1_genome_sizes_complete():
    total = sum(spec.full_genome_length for spec in DATASETS.values())
    # Table I genomes sum to ~0.9 Gbp
    assert 800e6 < total < 1.1e9
