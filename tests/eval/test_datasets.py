import numpy as np
import pytest

from repro.errors import DatasetError
from repro.eval import DATASETS, dataset_names, generate_dataset, load_or_generate


TINY = 1.0 / 5000.0  # genomes floor at MIN_GENOME = 100 kbp


def test_registry_has_all_table1_inputs():
    names = dataset_names()
    assert len(names) == 8
    for expected in (
        "e_coli", "p_aeruginosa", "c_elegans", "d_busckii",
        "human_chr7", "human_chr8", "b_splendens", "o_sativa_chr8",
    ):
        assert expected in names


def test_full_genome_lengths_match_table1():
    assert DATASETS["e_coli"].full_genome_length == 4_641_652
    assert DATASETS["b_splendens"].full_genome_length == 339_050_970
    assert DATASETS["o_sativa_chr8"].full_genome_length == 28_443_022


def test_unknown_dataset():
    with pytest.raises(DatasetError, match="unknown dataset"):
        generate_dataset("yeti")


def test_bad_scale():
    with pytest.raises(DatasetError):
        generate_dataset("e_coli", scale=0)


def test_generate_tiny_dataset():
    ds = generate_dataset("e_coli", scale=TINY, seed=0)
    assert ds.genome.size == 100_000  # floored
    assert len(ds.contigs) > 0
    assert len(ds.reads) > 0
    assert ds.reads.total_bases >= 10 * ds.genome.size * 0.99
    # reads carry truth
    assert "ref_start" in ds.reads.metas[0]


def test_generation_deterministic():
    a = generate_dataset("e_coli", scale=TINY, seed=3)
    b = generate_dataset("e_coli", scale=TINY, seed=3)
    assert np.array_equal(a.genome, b.genome)
    assert np.array_equal(a.contigs.buffer, b.contigs.buffer)
    assert np.array_equal(a.reads.buffer, b.reads.buffer)


def test_different_datasets_different_genomes():
    a = generate_dataset("e_coli", scale=TINY, seed=3)
    b = generate_dataset("p_aeruginosa", scale=TINY, seed=3)
    assert not np.array_equal(a.genome[:1000], b.genome[:1000])


def test_cache_round_trip(tmp_path):
    a = load_or_generate("e_coli", scale=TINY, seed=1, cache_dir=tmp_path)
    files = list(tmp_path.glob("*.npz"))
    assert len(files) == 1
    b = load_or_generate("e_coli", scale=TINY, seed=1, cache_dir=tmp_path)
    assert np.array_equal(a.genome, b.genome)
    assert a.contigs.names == b.contigs.names
    assert np.array_equal(a.reads.buffer, b.reads.buffer)
    assert a.reads.metas[0] == b.reads.metas[0]


def test_corrupt_cache_is_regenerated(tmp_path):
    """An unreadable .npz (truncated write, checkout mangling) is a cache
    miss: the dataset regenerates deterministically instead of raising."""
    a = load_or_generate("e_coli", scale=TINY, seed=1, cache_dir=tmp_path)
    (path,) = tmp_path.glob("*.npz")
    path.write_bytes(b"not a zip archive at all")
    b = load_or_generate("e_coli", scale=TINY, seed=1, cache_dir=tmp_path)
    assert np.array_equal(a.genome, b.genome)
    assert np.array_equal(a.reads.buffer, b.reads.buffer)


def test_real_like_flag():
    assert DATASETS["o_sativa_chr8"].is_real_like
    assert not DATASETS["e_coli"].is_real_like
    assert DATASETS["o_sativa_chr8"].hifi_median_length == 19_600
