import numpy as np
import pytest

from repro.core.hitcounter import BestHits
from repro.core.mapper import MappingResult
from repro.eval import QualityReport, evaluate_mapping
from repro.eval.truth import Benchmark


def make_bench(pairs, n_segments, n_contigs):
    keys = np.sort(
        np.array([(s << 32) | c for s, c in pairs], dtype=np.uint64)
    )
    has = np.zeros(n_segments, dtype=bool)
    for s, _ in pairs:
        has[s] = True
    return Benchmark(
        pair_keys=keys, n_segments=n_segments, n_contigs=n_contigs, segment_has_truth=has
    )


def make_result(subjects):
    subjects = np.asarray(subjects, dtype=np.int64)
    return MappingResult(
        segment_names=[f"q{i}" for i in range(subjects.size)],
        subject=subjects,
        hit_count=(subjects >= 0).astype(np.int64),
    )


def test_perfect_mapping():
    bench = make_bench([(0, 1), (1, 2)], n_segments=2, n_contigs=3)
    q = evaluate_mapping(make_result([1, 2]), bench)
    assert (q.tp, q.fp, q.fn) == (2, 0, 0)
    assert q.precision == 1.0 and q.recall == 1.0


def test_wrong_contig_is_fp_and_fn():
    bench = make_bench([(0, 1)], n_segments=1, n_contigs=3)
    q = evaluate_mapping(make_result([2]), bench)
    assert (q.tp, q.fp, q.fn) == (0, 1, 1)
    assert q.precision == 0.0 and q.recall == 0.0


def test_unmapped_with_truth_is_fn():
    bench = make_bench([(0, 1)], n_segments=1, n_contigs=2)
    q = evaluate_mapping(make_result([-1]), bench)
    assert (q.tp, q.fp, q.fn) == (0, 0, 1)


def test_unmapped_without_truth_is_tn():
    bench = make_bench([(0, 1)], n_segments=2, n_contigs=2)
    q = evaluate_mapping(make_result([1, -1]), bench)
    assert q.tp == 1 and q.fn == 0 and q.tn == 1


def test_any_true_contig_counts():
    """A segment with two true contigs is recalled by either."""
    bench = make_bench([(0, 1), (0, 2)], n_segments=1, n_contigs=3)
    for choice in (1, 2):
        q = evaluate_mapping(make_result([choice]), bench)
        assert q.tp == 1 and q.fn == 0
        assert q.recall == 1.0


def test_recall_upper_bounded_by_mapping_all_wrong():
    bench = make_bench([(0, 1), (1, 1)], n_segments=2, n_contigs=3)
    q = evaluate_mapping(make_result([0, 0]), bench)
    assert q.precision == 0.0 and q.recall == 0.0
    assert q.fn == 2


def test_f1_and_format():
    bench = make_bench([(0, 1), (1, 2)], n_segments=2, n_contigs=3)
    q = evaluate_mapping(make_result([1, 0]), bench)
    assert 0 < q.f1 < 1
    row = q.format_row("jem")
    assert "precision=" in row and "recall=" in row
