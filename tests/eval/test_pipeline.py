import pytest

from repro.core import JEMConfig
from repro.errors import DatasetError
from repro.eval import generate_dataset, prepare_benchmark, run_mappers


TINY = 1.0 / 5000.0
CFG = JEMConfig(trials=10)


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset("e_coli", scale=TINY, seed=2)


def test_run_all_three_mappers(dataset):
    res = run_mappers(dataset, CFG, mappers=("jem", "mashmap", "minhash"))
    assert set(res.runs) == {"jem", "mashmap", "minhash"}
    for run in res.runs.values():
        assert run.quality.n_segments == 2 * len(dataset.reads)
        assert run.index_seconds >= 0 and run.map_seconds >= 0


def test_quality_on_clean_bacterium(dataset):
    res = run_mappers(dataset, JEMConfig(trials=30), mappers=("jem",))
    q = res["jem"].quality
    assert q.precision > 0.95
    assert q.recall > 0.90


def test_shared_benchmark_reuse(dataset):
    segments, infos, bench = prepare_benchmark(dataset, CFG)
    res = run_mappers(
        dataset, CFG, mappers=("jem",), benchmark=bench, segments=segments, infos=infos
    )
    assert res.benchmark is bench


def test_unknown_mapper(dataset):
    with pytest.raises(DatasetError, match="unknown mapper"):
        run_mappers(dataset, CFG, mappers=("bwa",))
