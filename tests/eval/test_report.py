from repro.eval import format_seconds, render_series, render_table


def test_format_seconds():
    assert format_seconds(0.0012).endswith("ms")
    assert format_seconds(2.5) == "2.50s"
    assert format_seconds(1234.0) == "1,234s"


def test_render_table_alignment():
    out = render_table("T", ["col", "x"], [["a", "1"], ["bbbb", "22"]])
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "col" in lines[2]
    assert all("|" in line for line in lines[2:] if "-" not in line)


def test_render_table_empty_rows():
    out = render_table("T", ["a", "b"], [])
    assert "a" in out and "b" in out


def test_render_series():
    out = render_series(
        "Fig", "p", [4, 8], {"jem": [1.0, 0.5], "mashmap": [2.0, 1.5]}
    )
    assert "jem" in out and "mashmap" in out
    assert "0.5" in out
