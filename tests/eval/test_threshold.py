import numpy as np

from repro.core import JEMConfig, JEMMapper, extract_end_segments
from repro.eval import build_benchmark, evaluate_mapping
from repro.eval.metrics import threshold_sweep
from repro.seq import random_codes


def test_threshold_sweep_properties(rng, small_genome, tiling_contigs, clean_reads):
    cfg = JEMConfig(k=12, w=20, ell=500, trials=10, seed=4)
    mapper = JEMMapper(cfg)
    mapper.index(tiling_contigs)
    segments, infos = extract_end_segments(clean_reads, cfg.ell)
    bench = build_benchmark(segments, tiling_contigs, small_genome, k=cfg.k)
    result = mapper.map_segments(segments, infos)

    thresholds = [1, 2, 5, 8, 10]
    reports = threshold_sweep(result, bench, thresholds)
    assert len(reports) == len(thresholds)
    # threshold 1 == plain evaluation
    plain = evaluate_mapping(result, bench)
    assert reports[0].tp == plain.tp and reports[0].fp == plain.fp
    # mapped counts and recall are non-increasing
    mapped = [r.n_mapped for r in reports]
    recalls = [r.recall for r in reports]
    assert all(b <= a for a, b in zip(mapped, mapped[1:]))
    assert all(b <= a + 1e-12 for a, b in zip(recalls, recalls[1:]))
    # threshold above T filters everything
    (empty,) = threshold_sweep(result, bench, [cfg.trials + 1])
    assert empty.n_mapped == 0 and empty.tp == 0


def test_threshold_sweep_does_not_mutate(rng, small_genome, tiling_contigs, clean_reads):
    cfg = JEMConfig(k=12, w=20, ell=500, trials=6, seed=4)
    mapper = JEMMapper(cfg)
    mapper.index(tiling_contigs)
    segments, infos = extract_end_segments(clean_reads, cfg.ell)
    bench = build_benchmark(segments, tiling_contigs, small_genome, k=cfg.k)
    result = mapper.map_segments(segments, infos)
    before = result.subject.copy()
    threshold_sweep(result, bench, [1, 3, 6])
    assert np.array_equal(result.subject, before)
