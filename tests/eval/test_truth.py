import numpy as np
import pytest

from repro.core import extract_end_segments
from repro.errors import DatasetError
from repro.eval import Benchmark, build_benchmark, place_contigs
from repro.seq import SequenceSet, SequenceSetBuilder, decode


def make_benchmark_inputs(rng):
    """Hand-built genome with abutting contigs and truth-coordinated reads."""
    from repro.seq import random_codes

    genome = random_codes(20_000, rng)
    contigs = SequenceSet.from_strings(
        [
            ("c0", decode(genome[0:5_000])),
            ("c1", decode(genome[5_000:12_000])),
            ("c2", decode(genome[12_000:20_000])),
        ]
    )
    builder = SequenceSetBuilder()
    # read fully inside c1
    builder.add("inside", genome[6_000:10_000],
                {"ref_start": 6_000, "ref_end": 10_000, "ref_strand": 1})
    # read whose prefix crosses the c0/c1 boundary at 5000
    builder.add("crossing", genome[4_500:9_000],
                {"ref_start": 4_500, "ref_end": 9_000, "ref_strand": 1})
    return genome, contigs, builder.build()


def test_known_truth_pairs(rng):
    genome, contigs, reads = make_benchmark_inputs(rng)
    segments, _ = extract_end_segments(reads, 1_000)
    bench = build_benchmark(segments, contigs, genome, k=16)
    # segment 0 = inside/prefix [6000,7000) -> c1 only
    assert bench.contains(np.array([0]), np.array([1]))[0]
    assert not bench.contains(np.array([0]), np.array([0]))[0]
    # segment 2 = crossing/prefix [4500,5500) -> c0 (500bp) and c1 (500bp)
    assert bench.contains(np.array([2]), np.array([0]))[0]
    assert bench.contains(np.array([2]), np.array([1]))[0]
    # segment 3 = crossing/suffix [8000,9000) -> c1 only
    assert bench.contains(np.array([3]), np.array([1]))[0]
    assert bench.segment_has_truth.all()


def test_minimum_overlap_k(rng):
    genome, contigs, _ = make_benchmark_inputs(rng)
    builder = SequenceSetBuilder()
    # prefix [4990,5990): 10bp on c0 (<k=16) and 990 on c1 -> only c1 true
    builder.add("edge", genome[4_990:9_000],
                {"ref_start": 4_990, "ref_end": 9_000, "ref_strand": 1})
    segments, _ = extract_end_segments(builder.build(), 1_000)
    bench = build_benchmark(segments, contigs, genome, k=16)
    assert not bench.contains(np.array([0]), np.array([0]))[0]
    assert bench.contains(np.array([0]), np.array([1]))[0]


def test_missing_truth_meta_rejected(rng):
    genome, contigs, _ = make_benchmark_inputs(rng)
    segments = SequenceSet.from_strings([("q", "acgt" * 300)])
    with pytest.raises(DatasetError, match="truth coordinates"):
        build_benchmark(segments, contigs, genome, k=16)


def test_empty_inputs_rejected(rng):
    genome, contigs, reads = make_benchmark_inputs(rng)
    segments, _ = extract_end_segments(reads, 1_000)
    with pytest.raises(DatasetError):
        build_benchmark(SequenceSet.empty(), contigs, genome)
    with pytest.raises(DatasetError):
        build_benchmark(segments, SequenceSet.empty(), genome)


def test_place_contigs_recovers_coordinates(rng):
    genome, contigs, _ = make_benchmark_inputs(rng)
    starts, ends, placed = place_contigs(contigs, genome)
    assert placed.all()
    assert abs(starts[1] - 5_000) < 200
    assert abs(ends[1] - 12_000) < 200


def test_pair_keys_sorted(rng):
    genome, contigs, reads = make_benchmark_inputs(rng)
    segments, _ = extract_end_segments(reads, 1_000)
    bench = build_benchmark(segments, contigs, genome, k=16)
    keys = bench.pair_keys
    assert keys.size <= 1 or (keys[1:] > keys[:-1]).all()
