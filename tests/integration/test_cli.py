"""CLI integration tests driving ``repro.cli.main`` in-process."""

import os

import pytest

from repro.cli import build_parser, main


def test_version(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0
    assert "jem-mapper" in capsys.readouterr().out


def test_datasets_listing(capsys):
    assert main(["datasets"]) == 0
    out = capsys.readouterr().out
    assert "e_coli" in out and "B. splendens" in out


def test_simulate_and_map_round_trip(tmp_path, capsys):
    data = tmp_path / "data"
    assert main([
        "simulate", "e_coli", "--scale", "0.0002", "--seed", "3", "--out", str(data)
    ]) == 0
    assert (data / "e_coli_genome.fasta").exists()
    assert (data / "e_coli_contigs.fasta").exists()
    assert (data / "e_coli_reads.fastq").exists()

    out_tsv = tmp_path / "out.tsv"
    assert main([
        "map",
        "-q", str(data / "e_coli_reads.fastq"),
        "-s", str(data / "e_coli_contigs.fasta"),
        "-o", str(out_tsv),
        "--trials", "10",
    ]) == 0
    lines = out_tsv.read_text().splitlines()
    assert lines[1] == "segment\tcontig\thits"
    assert len(lines) > 10
    assert "/prefix\t" in lines[2] or "/suffix\t" in lines[2]


def test_map_parallel_matches_serial(tmp_path):
    data = tmp_path / "data"
    main(["simulate", "e_coli", "--scale", "0.0002", "--seed", "3", "--out", str(data)])
    serial = tmp_path / "serial.tsv"
    par = tmp_path / "par.tsv"
    args = ["-q", str(data / "e_coli_reads.fastq"),
            "-s", str(data / "e_coli_contigs.fasta"), "--trials", "8"]
    main(["map", *args, "-o", str(serial)])
    main(["map", *args, "-o", str(par), "-p", "4"])
    strip = lambda p: [l for l in p.read_text().splitlines() if not l.startswith("#")]
    assert strip(serial) == strip(par)


def test_index_then_map(tmp_path, capsys):
    data = tmp_path / "data"
    main(["simulate", "e_coli", "--scale", "0.0002", "--seed", "3", "--out", str(data)])
    idx = tmp_path / "contigs.idx.npz"
    assert main([
        "index", "-s", str(data / "e_coli_contigs.fasta"),
        "-o", str(idx), "--trials", "8",
    ]) == 0
    assert idx.exists()
    direct = tmp_path / "direct.tsv"
    via_index = tmp_path / "via_index.tsv"
    main(["map", "-q", str(data / "e_coli_reads.fastq"),
          "-s", str(data / "e_coli_contigs.fasta"), "-o", str(direct), "--trials", "8"])
    main(["map", "-q", str(data / "e_coli_reads.fastq"),
          "--index", str(idx), "-o", str(via_index)])
    strip = lambda p: [l for l in p.read_text().splitlines() if not l.startswith("#")]
    assert strip(direct) == strip(via_index)


def test_map_requires_exactly_one_source(tmp_path, capsys):
    data = tmp_path / "data"
    main(["simulate", "e_coli", "--scale", "0.0002", "--seed", "3", "--out", str(data)])
    rc = main(["map", "-q", str(data / "e_coli_reads.fastq")])
    assert rc == 2


def test_eval_command(tmp_path, capsys):
    assert main([
        "eval", "e_coli", "--scale", "0.0002", "--data-seed", "2",
        "--cache-dir", str(tmp_path), "--trials", "10", "--mappers", "jem",
    ]) == 0
    out = capsys.readouterr().out
    assert "precision=" in out


def test_bench_command(tmp_path, capsys):
    assert main([
        "bench", "table1", "--scale", "0.0002", "--datasets", "e_coli",
        "--cache-dir", str(tmp_path / "cache"),
        "--results-dir", str(tmp_path / "results"),
        "--bench-json-dir", str(tmp_path),
    ]) == 0
    assert (tmp_path / "results" / "table1.txt").exists()
    assert "Table I" in capsys.readouterr().out

    import json

    snapshot = json.loads((tmp_path / "BENCH_table1.json").read_text())
    assert snapshot["name"] == "table1"
    assert snapshot["config"]["scale"] == 0.0002
    assert snapshot["config"]["jem_config"]["trials"] == 30
    assert snapshot["elapsed_seconds"] > 0
    assert "data" in snapshot


def test_map_paf_output(tmp_path):
    data = tmp_path / "data"
    main(["simulate", "e_coli", "--scale", "0.0002", "--seed", "3", "--out", str(data)])
    paf = tmp_path / "out.paf"
    assert main([
        "map", "-q", str(data / "e_coli_reads.fastq"),
        "-s", str(data / "e_coli_contigs.fasta"),
        "-o", str(paf), "--paf", "--trials", "8",
    ]) == 0
    lines = paf.read_text().splitlines()
    assert len(lines) > 10
    fields = lines[0].split("\t")
    assert len(fields) == 13
    assert fields[4] in "+-"
    assert int(fields[1]) == 1000  # qlen = ell


def test_paf_incompatible_with_index(tmp_path):
    data = tmp_path / "data"
    main(["simulate", "e_coli", "--scale", "0.0002", "--seed", "3", "--out", str(data)])
    idx = tmp_path / "i.npz"
    main(["index", "-s", str(data / "e_coli_contigs.fasta"), "-o", str(idx),
          "--trials", "8"])
    rc = main(["map", "-q", str(data / "e_coli_reads.fastq"),
               "--index", str(idx), "--paf", "-o", "-"])
    assert rc == 2


def test_scaffold_command(tmp_path, capsys):
    data = tmp_path / "data"
    main(["simulate", "e_coli", "--scale", "0.0002", "--seed", "3", "--out", str(data)])
    out = tmp_path / "scaffolds.fasta"
    assert main([
        "scaffold", "-q", str(data / "e_coli_reads.fastq"),
        "-s", str(data / "e_coli_contigs.fasta"),
        "-o", str(out), "--trials", "12",
    ]) == 0
    text = out.read_text()
    assert text.startswith(">scaffold_")
    assert "n" in text  # gap fill present
    assert "scaffolds" in capsys.readouterr().out


def test_parser_rejects_unknown_dataset():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["simulate", "martian_genome"])
