"""End-to-end integration: simulate -> assemble -> map -> evaluate."""

import numpy as np
import pytest

from repro.core import JEMConfig, JEMMapper
from repro.eval import evaluate_mapping, generate_dataset, prepare_benchmark, run_mappers
from repro.parallel import run_parallel_jem

TINY = 1.0 / 5000.0


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset("c_elegans", scale=TINY, seed=4)


@pytest.fixture(scope="module")
def config():
    return JEMConfig(trials=20)


def test_full_pipeline_quality(dataset, config):
    """The headline behaviour: >95% precision, >90% recall, most segments mapped."""
    res = run_mappers(dataset, config, mappers=("jem",))
    q = res["jem"].quality
    assert q.precision > 0.95
    assert q.recall > 0.90
    assert res["jem"].result.mapped_fraction > 0.9


def test_jem_and_mashmap_agree(dataset, config):
    """The two mappers assign the same contig for the bulk of segments."""
    res = run_mappers(dataset, config, mappers=("jem", "mashmap"))
    a = res["jem"].result.subject
    b = res["mashmap"].result.subject
    both = (a >= 0) & (b >= 0)
    agreement = (a[both] == b[both]).mean()
    assert agreement > 0.9


def test_parallel_run_full_dataset(dataset, config):
    seq = JEMMapper(config)
    seq.index(dataset.contigs)
    expected = seq.map_reads(dataset.reads)
    run = run_parallel_jem(dataset.contigs, dataset.reads, config, p=8)
    assert np.array_equal(run.mapping.subject, expected.subject)
    bench = prepare_benchmark(dataset, config)[2]
    q = evaluate_mapping(run.mapping, bench)
    assert q.precision > 0.95


def test_identity_of_true_mappings(dataset, config):
    """Correctly mapped segments align at HiFi-level identity (Fig. 9)."""
    from repro.align import segment_identity
    from repro.core import extract_end_segments

    res = run_mappers(dataset, config, mappers=("jem",))
    mapping = res["jem"].result
    segments, _ = extract_end_segments(dataset.reads, config.ell)
    mapped = np.flatnonzero(mapping.mapped_mask)[:25]
    identities = [
        segment_identity(
            segments.codes_of(int(i)), dataset.contigs.codes_of(int(mapping.subject[i]))
        )
        for i in mapped
    ]
    assert np.median(identities) > 95.0
