"""The documented public API surface stays importable and coherent."""

import importlib

import pytest


def test_top_level_exports():
    import repro

    for name in repro.__all__:
        assert hasattr(repro, name), name
    assert repro.__version__


@pytest.mark.parametrize(
    "module",
    [
        "repro.seq",
        "repro.sketch",
        "repro.core",
        "repro.baselines",
        "repro.parallel",
        "repro.simulate",
        "repro.assembly",
        "repro.align",
        "repro.eval",
        "repro.scaffold",
        "repro.bench",
    ],
)
def test_subpackage_all_resolves(module):
    mod = importlib.import_module(module)
    assert hasattr(mod, "__all__")
    for name in mod.__all__:
        assert hasattr(mod, name), f"{module}.{name}"


def test_quickstart_flow_matches_readme():
    """The README quickstart runs verbatim (smaller genome for speed)."""
    import numpy as np

    from repro import JEMConfig, JEMMapper
    from repro.assembly import AssemblyConfig, assemble
    from repro.simulate import (
        GenomeProfile,
        HiFiProfile,
        IlluminaProfile,
        simulate_genome,
        simulate_hifi_reads,
        simulate_short_reads,
    )

    rng = np.random.default_rng(42)
    genome = simulate_genome(GenomeProfile(length=50_000, repeat_fraction=0.05), rng)
    contigs = assemble(
        simulate_short_reads(genome, IlluminaProfile(coverage=25), rng),
        AssemblyConfig(k=25, min_count=3),
    )
    reads = simulate_hifi_reads(genome, HiFiProfile(coverage=5), rng)
    mapper = JEMMapper(JEMConfig())
    mapper.index(contigs)
    result = mapper.map_reads(reads)
    pairs = result.pairs(mapper.subject_names)
    assert len(pairs) == result.n_mapped > 0
