"""Asyncio TCP front-end: concurrent sessions, quotas, protocol parity.

The front-end runs in a background thread's event loop while test-side
clients drive real TCP connections through the same
:func:`~repro.service.protocol.run_session` the CLI uses — so these
tests exercise the exact client/server pairing shipped to users.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import socket
import threading
import time

import pytest

from repro import JEMConfig, JEMMapper
from repro.netserve import NetFrontend, ReplicaSet, make_placement, parse_hostport
from repro.errors import ReproError
from repro.service import ServiceConfig
from repro.service.protocol import SocketTransport, run_session
from repro.service.queue import MapFuture

CONFIG = JEMConfig(k=12, w=20, ell=500, trials=6, seed=99)

SERVICE = ServiceConfig(max_batch_size=8, max_wait_ms=1.0)


class TestParseHostport:
    def test_forms(self):
        assert parse_hostport("0.0.0.0:9000") == ("0.0.0.0", 9000)
        assert parse_hostport(":9000") == ("127.0.0.1", 9000)
        assert parse_hostport("9000") == ("127.0.0.1", 9000)

    def test_bad_port_rejected(self):
        with pytest.raises(ReproError, match="bad listen address"):
            parse_hostport("localhost:http")


@contextlib.contextmanager
def serving(backend, **kwargs):
    """Run a NetFrontend on a fresh loop in a thread; yield its address."""
    loop = asyncio.new_event_loop()
    frontend = NetFrontend(backend, port=0, **kwargs)
    started = threading.Event()

    def run() -> None:
        asyncio.set_event_loop(loop)

        async def main() -> None:
            await frontend.start()
            started.set()
            await frontend.serve_forever()

        loop.run_until_complete(main())
        loop.close()

    thread = threading.Thread(target=run, name="jem-net-test", daemon=True)
    thread.start()
    assert started.wait(10.0), "frontend failed to start"
    try:
        yield frontend.address
    finally:
        asyncio.run_coroutine_threadsafe(frontend.stop(), loop).result(timeout=30.0)
        thread.join(timeout=30.0)


def connect_lines(address):
    """A raw NDJSON socket session: (send, readline, close)."""
    sock = socket.create_connection(address, timeout=30.0)
    rfile = sock.makefile("r", encoding="utf-8", newline="\n")

    def send(obj: dict) -> None:
        sock.sendall((json.dumps(obj) + "\n").encode("utf-8"))

    def readline() -> dict:
        return json.loads(rfile.readline())

    def close() -> None:
        rfile.close()
        sock.close()

    return send, readline, close


def wait_until(predicate, timeout: float = 10.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return predicate()


def map_replies(stats):
    """The order-book view of a session: id/name/results per response."""
    return [
        {k: r.get(k) for k in ("id", "name", "results")} for r in stats.responses
    ]


class TestEndToEnd:
    @pytest.fixture
    def backend(self, tiling_contigs):
        mapper = JEMMapper(CONFIG, store_kind="columnar")
        mapper.index(tiling_contigs)
        replica_set = ReplicaSet(
            mapper.table, mapper.subject_names, CONFIG,
            placement=make_placement("scatter", 3), service_config=SERVICE,
        )
        yield replica_set
        replica_set.drain()

    def test_concurrent_clients_bit_identical_to_single_session(
        self, backend, tiling_contigs, clean_reads
    ):
        """Two racing TCP clients each see exactly the pipe-mode transcript."""
        import io

        from repro.service import MappingService, serve_loop

        # the single-session reference: one pipe-mode serve_loop
        with MappingService.from_contigs(
            tiling_contigs, CONFIG, SERVICE
        ) as service:
            requests = "".join(
                json.dumps({"op": "map", "id": i, "name": clean_reads.names[i],
                            "seq": clean_reads[i].sequence}) + "\n"
                for i in range(len(clean_reads))
            )
            out = io.StringIO()
            serve_loop(service, io.StringIO(requests), out)
        reference = [
            {k: r.get(k) for k in ("id", "name", "results")}
            for r in map(json.loads, out.getvalue().splitlines())
            if "results" in r
        ]

        with serving(backend) as address:
            outcomes: dict[int, object] = {}

            def client(slot: int) -> None:
                transport = SocketTransport.connect(*address)
                outcomes[slot] = run_session(clean_reads, transport)

            threads = [
                threading.Thread(target=client, args=(slot,)) for slot in range(2)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120.0)

        assert set(outcomes) == {0, 1}
        for stats in outcomes.values():
            assert stats.drained_reply is not None
            assert stats.errors == 0
            assert map_replies(stats) == reference

    def test_health_is_answered_immediately(self, backend):
        with serving(backend) as address:
            send, readline, close = connect_lines(address)
            send({"op": "health"})
            reply = readline()
            close()
        assert reply["op"] == "health"
        assert reply["ready"] and reply["live"]
        assert reply["placement"]["kind"] == "scatter"

    def test_metrics_op_returns_aggregate_and_replicas(
        self, backend, clean_reads
    ):
        with serving(backend) as address:
            send, readline, close = connect_lines(address)
            send({"op": "map", "id": 0, "name": clean_reads.names[0],
                  "seq": clean_reads[0].sequence})
            send({"op": "metrics"})
            first = readline()   # the map: metrics is ordered behind it
            second = readline()
            close()
        assert "results" in first
        assert second["op"] == "metrics"
        assert "aggregate" in second and "replicas" in second
        labels = [s["labels"]["replica"] for s in second["replicas"]]
        assert labels == ["0", "1", "2", "front"]

    def test_drain_reports_session_summary(self, backend, clean_reads):
        with serving(backend) as address:
            transport = SocketTransport.connect(*address)
            stats = run_session(clean_reads, transport)
        assert stats.drained_reply["mapped"] == len(clean_reads)
        assert stats.drained_reply["rejected"] == 0
        assert "aggregate" in stats.drained_reply["metrics"]

    def test_unknown_op_is_in_band(self, backend):
        with serving(backend) as address:
            send, readline, close = connect_lines(address)
            send({"op": "teleport"})
            reply = readline()
            close()
        assert "unknown op" in reply["error"]


class StubMapping:
    segment_names = ["read.pre"]
    subject_names = ["contig_0"]
    hit_count = [5]
    cached = False
    degraded = False


class StubBackend:
    """Futures the test completes by hand — exposes ordering and quotas."""

    def __init__(self) -> None:
        self.futures: list[MapFuture] = []
        self.names: list[str] = []

    def submit(self, name, seq, *, deadline_s=None) -> MapFuture:
        future: MapFuture = MapFuture()
        self.futures.append(future)
        self.names.append(name)
        return future

    def healthz(self) -> dict:
        return {"live": True, "ready": True}

    def metrics_snapshot(self) -> dict:
        return {"aggregate": {}, "replicas": []}


class TestTenantQuota:
    def test_quota_rejects_excess_in_band(self):
        backend = StubBackend()
        with serving(backend, tenant_quota=1) as address:
            send, readline, close = connect_lines(address)
            send({"op": "map", "id": 0, "seq": "ACGT", "tenant": "acme"})
            send({"op": "map", "id": 1, "seq": "ACGT", "tenant": "acme"})
            # the first is admitted; the second must be rejected without
            # ever reaching the backend
            assert wait_until(lambda: backend.futures)
            assert len(backend.futures) == 1
            backend.futures[0].set_result(StubMapping())
            first = readline()
            second = readline()
            send({"op": "drain"})
            summary = readline()
            close()
        assert first["id"] == 0 and "results" in first
        assert second["id"] == 1 and second["error"] == "overloaded"
        assert second["retry_after"] > 0
        assert second["tenant"] == "acme"
        assert summary["op"] == "drained" and summary["rejected"] == 1

    def test_quota_is_per_tenant_not_global(self):
        backend = StubBackend()
        with serving(backend, tenant_quota=1) as address:
            send, readline, close = connect_lines(address)
            send({"op": "map", "id": 0, "seq": "ACGT", "tenant": "acme"})
            send({"op": "map", "id": 1, "seq": "ACGT", "tenant": "other"})
            assert wait_until(lambda: len(backend.futures) == 2)
            # different tenants are both admitted under the same quota
            backend.futures[0].set_result(StubMapping())
            backend.futures[1].set_result(StubMapping())
            assert "results" in readline()
            assert "results" in readline()
            close()

    def test_quota_frees_as_responses_drain(self):
        backend = StubBackend()
        with serving(backend, tenant_quota=1) as address:
            send, readline, close = connect_lines(address)
            send({"op": "map", "id": 0, "seq": "ACGT", "tenant": "acme"})
            assert wait_until(lambda: backend.futures)
            backend.futures[0].set_result(StubMapping())
            assert "results" in readline()  # response written → quota freed
            send({"op": "map", "id": 1, "seq": "ACGT", "tenant": "acme"})
            assert wait_until(lambda: len(backend.futures) == 2)
            backend.futures[1].set_result(StubMapping())
            assert "results" in readline()
            close()


class TestFairness:
    def test_firehose_cannot_starve_a_trickle_client(self):
        """A trickle client's read is admitted and answered while a
        firehose connection holds 64 unresolved in-flight maps."""
        backend = StubBackend()
        with serving(backend, fair_chunk=1) as address:
            hose_send, _hose_read, hose_close = connect_lines(address)
            for i in range(64):
                hose_send({"op": "map", "id": i, "name": f"hose-{i}",
                           "seq": "ACGT"})
            trickle_send, trickle_read, trickle_close = connect_lines(address)
            trickle_send({"op": "map", "id": 999, "name": "trickle",
                          "seq": "ACGT"})
            assert wait_until(lambda: "trickle" in backend.names)
            backend.futures[backend.names.index("trickle")].set_result(
                StubMapping()
            )
            reply = trickle_read()
            assert reply["id"] == 999 and "results" in reply
            for i, future in enumerate(backend.futures):
                if backend.names[i] != "trickle":
                    future.set_result(StubMapping())
            trickle_close()
            hose_close()
