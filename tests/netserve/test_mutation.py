"""Online index mutation across a ReplicaSet: swap protocol, fail-closed.

Mutations land on the set-level LSM handle and the resulting generation
is installed everywhere at once — adopted wholesale by every replica
(replicate) or re-sharded behind fresh lookup lanes (scatter).  These
tests pin the swap contract: answers match a monolithic rebuild on both
placements and both lookup paths, a lane stamped with the wrong
generation is refused (served inline instead — fail closed, never a
mixed answer), and the TCP front door drives the same mutations through
the shared NDJSON protocol.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import socket
import threading

import numpy as np
import pytest

from repro import JEMConfig, JEMMapper
from repro.netserve import NetFrontend, ReplicaSet, make_placement
from repro.seq.records import SequenceSet
from repro.service import ServiceConfig

CONFIG = JEMConfig(k=12, w=20, ell=300, trials=5, seed=17)

SERVICE = ServiceConfig(max_batch_size=8, max_wait_ms=1.0)


def _dna(rng, n: int) -> str:
    return "".join("ACGT"[c] for c in rng.integers(0, 4, size=n))


@pytest.fixture
def genome(rng):
    return {f"c{i}": _dna(rng, 900) for i in range(6)}


@pytest.fixture
def indexed(genome):
    mapper = JEMMapper(CONFIG, store_kind="columnar")
    mapper.index(SequenceSet.from_strings(list(genome.items())))
    return mapper


def make_set(indexed, kind, n, **kwargs):
    kwargs.setdefault("service_config", SERVICE)
    return ReplicaSet(
        indexed.table, indexed.subject_names, CONFIG,
        placement=make_placement(kind, n), **kwargs,
    )


def labels_of(replica_set, world: dict) -> list[str | None]:
    """(prefix, suffix) contig labels for one full-contig read per name."""
    futures = [
        (replica_set.submit(f"read_{name}", seq))
        for name, seq in world.items()
    ]
    out: list[str | None] = []
    for future in futures:
        out.extend(future.result(30.0).subject_names)
    return out


def rebuilt_labels(live_pairs, world: dict) -> list[str | None]:
    mapper = JEMMapper(CONFIG)
    mapper.index(SequenceSet.from_strings(live_pairs))
    reads = SequenceSet.from_strings(
        [(f"read_{n}", s) for n, s in world.items()]
    )
    result = mapper.map_reads(reads)
    return [
        mapper.subject_names[s] if s >= 0 else None for s in result.subject
    ]


def mutate(replica_set, late: dict, removed: list[str]) -> None:
    for name, seq in late.items():
        replica_set.add_contigs(SequenceSet.from_strings([(name, seq)]))
    replica_set.remove_contigs(removed)
    replica_set.flush_index()
    replica_set.compact_index()


class TestPlacementMutationParity:
    @pytest.mark.parametrize("kind", ["replicate", "scatter"])
    @pytest.mark.parametrize("no_native", [False, True])
    def test_mutated_set_matches_rebuild(
        self, indexed, genome, rng, kind, no_native, monkeypatch
    ):
        if no_native:
            monkeypatch.setenv("REPRO_NO_NATIVE", "1")
        late = {f"n{i}": _dna(rng, 900) for i in range(2)}
        world = {**genome, **late}
        with make_set(indexed, kind, 3) as replica_set:
            before = labels_of(replica_set, world)
            # new contigs unknown, removed ones still live
            assert before[-4:] == [None, None, None, None]
            assert "c1" in before

            mutate(replica_set, late, ["c1"])
            assert replica_set.index_generation > 0

            got = labels_of(replica_set, world)
            live = [(n, s) for n, s in world.items() if n != "c1"]
            assert got == rebuilt_labels(live, world)
            assert "c1" not in got
            assert got[-4:] == ["n0", "n0", "n1", "n1"]

    def test_scatter_keeps_scattering_after_swap(self, indexed, genome, rng):
        """Post-swap lanes carry the new generation; no permanent fallback."""
        late = {"n0": _dna(rng, 900)}
        world = {**genome, **late}
        with make_set(indexed, "scatter", 3) as replica_set:
            mutate(replica_set, late, ["c2"])
            stats = replica_set.scatter_stats
            base_scattered = stats.scattered
            got = labels_of(replica_set, world)
            assert stats.scattered > base_scattered
            assert stats.mismatches == 0
            live = [(n, s) for n, s in world.items() if n != "c2"]
            assert got == rebuilt_labels(live, world)


class TestFailClosed:
    def test_wrong_generation_lane_is_refused_not_mixed(
        self, indexed, genome, rng
    ):
        """A lane stamped with a stale generation serves nothing.

        Its share falls back to the root store of the *current*
        generation, so the answers stay bit-identical — the mismatch
        only shows up in the stats and costs front-end CPU.
        """
        late = {"n0": _dna(rng, 900)}
        world = {**genome, **late}
        with make_set(indexed, "scatter", 3) as replica_set:
            mutate(replica_set, late, ["c3"])
            replica_set._lanes[0].generation += 17  # simulate a mis-wired swap
            got = labels_of(replica_set, world)
            stats = replica_set.scatter_stats
            assert stats.mismatches > 0
            live = [(n, s) for n, s in world.items() if n != "c3"]
            assert got == rebuilt_labels(live, world)
            assert replica_set.healthz()["generations_agree"] is True

    @pytest.mark.parametrize("kind", ["replicate", "scatter"])
    def test_healthz_reports_agreeing_generations(
        self, indexed, genome, rng, kind
    ):
        late = {"n0": _dna(rng, 900)}
        with make_set(indexed, kind, 3) as replica_set:
            health = replica_set.healthz()
            assert health["index_generation"] == 0
            assert health["generations_agree"] is True

            mutate(replica_set, late, ["c0"])

            health = replica_set.healthz()
            assert health["index_generation"] == replica_set.index_generation
            assert health["generations_agree"] is True
            for rep in health["replicas"]:
                assert rep["index_generation"] == health["index_generation"]
            if kind == "scatter":
                assert health["scatter"]["mismatches"] == 0
            stats = replica_set.store_stats()
            assert stats["generation"] == health["index_generation"]
            assert stats["segments"] == 1  # compacted


# -- TCP front door ----------------------------------------------------------


@contextlib.contextmanager
def serving(backend, **kwargs):
    """Run a NetFrontend on a fresh loop in a thread; yield its address."""
    loop = asyncio.new_event_loop()
    frontend = NetFrontend(backend, port=0, **kwargs)
    started = threading.Event()

    def run() -> None:
        asyncio.set_event_loop(loop)

        async def main() -> None:
            await frontend.start()
            started.set()
            await frontend.serve_forever()

        loop.run_until_complete(main())
        loop.close()

    thread = threading.Thread(target=run, name="jem-net-mut-test", daemon=True)
    thread.start()
    assert started.wait(10.0), "frontend failed to start"
    try:
        yield frontend.address
    finally:
        asyncio.run_coroutine_threadsafe(frontend.stop(), loop).result(timeout=30.0)
        thread.join(timeout=30.0)


def connect_lines(address):
    """A raw NDJSON socket session: (send, readline, close)."""
    sock = socket.create_connection(address, timeout=30.0)
    rfile = sock.makefile("r", encoding="utf-8", newline="\n")

    def send(obj: dict) -> None:
        sock.sendall((json.dumps(obj) + "\n").encode("utf-8"))

    def readline() -> dict:
        return json.loads(rfile.readline())

    def close() -> None:
        rfile.close()
        sock.close()

    return send, readline, close


class TestFrontendMutations:
    def test_mutation_ops_over_tcp(self, indexed, genome, rng):
        new_seq = _dna(rng, 900)
        with make_set(indexed, "scatter", 3) as replica_set:
            with serving(replica_set) as address:
                send, readline, close = connect_lines(address)
                try:
                    send({"op": "stats"})
                    assert readline()["generation"] == 0

                    send({"op": "map", "id": 0, "name": "r0", "seq": new_seq})
                    first = readline()
                    assert [r["contig"] for r in first["results"]] == [None, None]

                    send({"op": "add_contigs", "names": ["p0"], "seqs": [new_seq]})
                    added = readline()
                    assert added["op"] == "add_contigs"
                    assert added["generation"] == 1

                    send({"op": "map", "id": 1, "name": "r0", "seq": new_seq})
                    second = readline()
                    assert [r["contig"] for r in second["results"]] == ["p0", "p0"]

                    send({"op": "remove_contigs", "names": ["p0"]})
                    removed = readline()
                    assert removed["generation"] == 2

                    send({"op": "map", "id": 2, "name": "r0", "seq": new_seq})
                    third = readline()
                    assert "p0" not in [r["contig"] for r in third["results"]]
                finally:
                    close()
        assert replica_set.index_generation == 2

    def test_bad_mutation_op_is_an_error_reply(self, indexed):
        with make_set(indexed, "replicate", 2) as replica_set:
            with serving(replica_set) as address:
                send, readline, close = connect_lines(address)
                try:
                    send({"op": "remove_contigs", "names": ["ghost"]})
                    assert "error" in readline()
                    send({"op": "stats"})  # session must survive the error
                    assert readline()["op"] == "stats"
                finally:
                    close()
