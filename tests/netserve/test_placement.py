"""Placement policies: the sharding functor and its ownership contract."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.store import ColumnarSketchStore, StoreShard
from repro.errors import ServiceError
from repro.netserve import (
    FULL_RANGE,
    ReplicatedPlacement,
    ScatterPlacement,
    make_placement,
)

N_SUBJECTS = 12


def store_of(values: np.ndarray, trials: int = 3) -> ColumnarSketchStore:
    """A columnar store whose every trial holds ``values`` (one subject each)."""
    values = np.asarray(values, dtype=np.uint64)
    subjects = np.arange(values.size, dtype=np.uint64) % N_SUBJECTS
    keys = [np.unique((values << np.uint64(32)) | subjects) for _ in range(trials)]
    return ColumnarSketchStore.from_trial_keys(keys, N_SUBJECTS)


class TestFactory:
    def test_known_kinds(self):
        assert isinstance(make_placement("scatter", 3), ScatterPlacement)
        assert isinstance(make_placement("replicate", 2), ReplicatedPlacement)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ServiceError, match="unknown placement"):
            make_placement("consistent-hash", 3)

    def test_replica_count_must_be_positive(self):
        with pytest.raises(ServiceError):
            make_placement("scatter", 0)

    def test_describe_names_policy_and_size(self):
        desc = make_placement("replicate", 4).describe()
        assert desc == {"kind": "replicate", "replicas": 4}


class TestScatterPlacement:
    def test_bounds_require_plan_first(self):
        placement = ScatterPlacement(3)
        with pytest.raises(ServiceError, match="plan"):
            placement.bounds

    def test_plan_partitions_all_entries(self, rng):
        store = store_of(rng.integers(0, 1 << 20, size=400, dtype=np.uint64))
        placement = ScatterPlacement(4)
        shards = placement.plan(store)
        assert len(shards) == 4
        assert placement.bounds.shape == (5,)
        assert placement.bounds[0] == 0 and placement.bounds[-1] == 1 << 32
        assert sum(s.store.total_entries for s in shards) == store.total_entries

    def test_owner_of_agrees_with_shard_owns(self, rng):
        """The functor and the planned shards must never disagree on a key."""
        store = store_of(rng.integers(0, 1 << 16, size=300, dtype=np.uint64))
        placement = ScatterPlacement(4)
        shards = placement.plan(store)
        qv = rng.integers(0, 1 << 32, size=1000, dtype=np.uint64)
        owner = placement.owner_of(qv)
        assert ((owner >= 0) & (owner < 4)).all()
        for i, shard in enumerate(shards):
            assert np.array_equal(owner == i, shard.owns(qv))

    def test_owner_of_with_duplicate_boundaries(self):
        """Skewed values collapse interior bounds; ownership stays consistent.

        Every entry shares one sketch value, so the equal-frequency split
        degenerates: several shards own an empty ``[lo, lo)`` range.  The
        boundary value itself must map to the one shard whose range is
        non-empty — the same answer ``StoreShard.owns`` gives.
        """
        store = store_of(np.full(50, 7, dtype=np.uint64))
        placement = ScatterPlacement(4)
        shards = placement.plan(store)
        assert (np.diff(placement.bounds) >= 0).all()
        qv = np.array([0, 6, 7, 8, (1 << 32) - 1], dtype=np.uint64)
        owner = placement.owner_of(qv)
        for i, shard in enumerate(shards):
            assert np.array_equal(owner == i, shard.owns(qv))
        # the hot value is owned by exactly one shard, and that shard
        # holds every entry
        hot_owner = int(owner[2])
        assert shards[hot_owner].store.total_entries == store.total_entries


class TestReplicatedPlacement:
    def test_every_replica_owns_the_full_range(self, rng):
        store = store_of(rng.integers(0, 1 << 20, size=100, dtype=np.uint64))
        shards = ReplicatedPlacement(3).plan(store)
        assert len(shards) == 3
        for shard in shards:
            assert isinstance(shard, StoreShard)
            assert (shard.lo, shard.hi) == FULL_RANGE
            assert shard.store is store  # no copies: one store, N owners
