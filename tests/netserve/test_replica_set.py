"""ReplicaSet behaviour: placement parity, fault isolation, observability.

The load-bearing claim from the serving design: for either placement
policy, any replica count, seeded fault plans, and even a sick replica
with an open breaker, the set's results are bit-identical to a
sequential :class:`JEMMapper` over the same reads.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import JEMConfig, JEMMapper
from repro.errors import ServiceClosedError
from repro.netserve import ReplicaSet, make_placement
from repro.parallel.faults import FaultPlan
from repro.service import ServiceConfig
from repro.service.health import OPEN

CONFIG = JEMConfig(k=12, w=20, ell=500, trials=6, seed=99)

SERVICE = ServiceConfig(max_batch_size=8, max_wait_ms=1.0)


@pytest.fixture
def indexed(tiling_contigs):
    mapper = JEMMapper(CONFIG, store_kind="columnar")
    mapper.index(tiling_contigs)
    return mapper


@pytest.fixture
def sequential(indexed, clean_reads):
    return indexed.map_reads(clean_reads)


def make_set(indexed, kind, n, **kwargs):
    kwargs.setdefault("service_config", SERVICE)
    return ReplicaSet(
        indexed.table, indexed.subject_names, CONFIG,
        placement=make_placement(kind, n), **kwargs,
    )


def assert_same_mapping(actual, expected):
    assert actual.segment_names == expected.segment_names
    assert np.array_equal(actual.subject, expected.subject)
    assert np.array_equal(actual.hit_count, expected.hit_count)


class TestPlacementParity:
    @pytest.mark.parametrize("kind", ["scatter", "replicate"])
    @pytest.mark.parametrize("n", [1, 3])
    def test_bit_identical_to_sequential(
        self, indexed, clean_reads, sequential, kind, n
    ):
        with make_set(indexed, kind, n) as replica_set:
            result = replica_set.map_reads(clean_reads)
        assert_same_mapping(result, sequential)

    @pytest.mark.parametrize("kind", ["scatter", "replicate"])
    def test_bit_identical_under_seeded_fault_plan(
        self, indexed, clean_reads, sequential, kind
    ):
        for seed in (1, 2, 3):
            plan = FaultPlan.seeded(seed, 3, delay=0.001)
            with make_set(indexed, kind, 3, faults=plan) as replica_set:
                result = replica_set.map_reads(clean_reads)
            assert_same_mapping(result, sequential)

    def test_scatter_actually_scatters(self, indexed, clean_reads, sequential):
        with make_set(indexed, "scatter", 3) as replica_set:
            result = replica_set.map_reads(clean_reads)
            stats = replica_set.scatter_stats
            assert stats is not None and stats.scattered > 0
            assert stats.fallbacks == 0  # all owners healthy
        assert_same_mapping(result, sequential)

    def test_replicate_spreads_reads_across_replicas(
        self, indexed, clean_reads, sequential
    ):
        with make_set(indexed, "replicate", 3) as replica_set:
            result = replica_set.map_reads(clean_reads)
            served = [
                r.service.metrics.snapshot()["counters"]["requests_total"]
                for r in replica_set.replicas
            ]
        assert_same_mapping(result, sequential)
        assert all(count > 0 for count in served)  # round-robin reached all
        assert sum(served) == len(clean_reads)


class TestFusedPathParity:
    """The fused native kernel inside shard workers must not change bytes.

    Scatter placement reassembles per-shard partial votes in the
    gather stage; replicate placement serves whole reads per replica.
    Both must produce the same mapping whether the workers run the fused
    C kernel or the numpy oracle (REPRO_NO_NATIVE)."""

    @pytest.mark.parametrize("kind", ["scatter", "replicate"])
    def test_fused_and_numpy_workers_bit_identical(
        self, indexed, clean_reads, kind, monkeypatch
    ):
        with make_set(indexed, kind, 3) as replica_set:
            fused = replica_set.map_reads(clean_reads)
        monkeypatch.setenv("REPRO_NO_NATIVE", "1")
        with make_set(indexed, kind, 3) as replica_set:
            oracle = replica_set.map_reads(clean_reads)
        assert_same_mapping(fused, oracle)


class TestSickReplicaIsolation:
    BREAKER = ServiceConfig(
        max_batch_size=8, max_wait_ms=1.0,
        breaker_failures=1, breaker_cooldown_batches=10_000,
    )

    def test_scatter_with_one_breaker_open_stays_exact(
        self, indexed, clean_reads, sequential
    ):
        with make_set(
            indexed, "scatter", 3, service_config=self.BREAKER
        ) as replica_set:
            sick = replica_set.replicas[1].service.breaker
            sick.record_failure()
            assert sick.state == OPEN
            result = replica_set.map_reads(clean_reads)
            assert replica_set.scatter_stats.fallbacks > 0
            health = replica_set.healthz()
            assert health["ready"]  # the set still serves exactly
        assert_same_mapping(result, sequential)

    def test_replicate_routes_around_open_breaker(
        self, indexed, clean_reads, sequential
    ):
        with make_set(
            indexed, "replicate", 3, service_config=self.BREAKER
        ) as replica_set:
            sick = replica_set.replicas[0].service.breaker
            sick.record_failure()
            assert sick.state == OPEN
            result = replica_set.map_reads(clean_reads)
            served = [
                r.service.metrics.snapshot()["counters"]["requests_total"]
                for r in replica_set.replicas
            ]
        assert_same_mapping(result, sequential)
        # the sick replica would answer degraded, so it must see no reads
        assert served[0] == 0
        assert served[1] + served[2] == len(clean_reads)


class TestObservability:
    def test_metrics_are_labelled_by_replica(self, indexed):
        with make_set(indexed, "scatter", 2) as replica_set:
            snaps = [m.snapshot() for m in replica_set.metrics_registries()]
        labels = [s["labels"] for s in snaps]
        assert [l["replica"] for l in labels] == ["0", "1", "front"]
        assert all(l["placement"] == "scatter" for l in labels)
        # shard replicas advertise their owned key range
        for label in labels[:2]:
            assert label["key_range"].startswith("[0x")

    def test_aggregate_sums_across_replicas(self, indexed, clean_reads):
        with make_set(indexed, "replicate", 3) as replica_set:
            replica_set.map_reads(clean_reads)
            snapshot = replica_set.metrics_snapshot()
        aggregate = snapshot["aggregate"]
        per_replica = snapshot["replicas"]
        assert len(per_replica) == 3
        total = sum(
            s["counters"]["responses_total"] for s in per_replica
        )
        assert aggregate["counters"]["responses_total"] == total == len(clean_reads)
        # contributors are identifiable from the aggregate alone
        assert [r["replica"] for r in aggregate["replicas"]] == ["0", "1", "2"]

    def test_healthz_reports_placement_and_replicas(self, indexed):
        with make_set(indexed, "scatter", 3) as replica_set:
            health = replica_set.healthz()
        assert health["live"] and health["ready"]
        assert health["placement"] == {"kind": "scatter", "replicas": 3}
        assert health["replicas_ready"] == 3
        assert [h["replica"] for h in health["replicas"]] == [0, 1, 2]
        ranges = [h["key_range"] for h in health["replicas"]]
        assert ranges[0][0] == 0 and ranges[-1][1] == 1 << 32
        assert all(lo <= hi for lo, hi in ranges)
        assert health["scatter"] == {
            "scattered": 0, "fallbacks": 0, "mismatches": 0, "hedged": 0,
        }


class TestLifecycle:
    def test_drain_is_idempotent_and_closes_admission(
        self, indexed, clean_reads
    ):
        replica_set = make_set(indexed, "scatter", 2)
        replica_set.map_reads(clean_reads)
        replica_set.drain()
        assert replica_set.drained
        replica_set.drain()  # second drain is a no-op, not an error
        with pytest.raises(ServiceClosedError):
            replica_set.submit("r", "ACGT" * 300)

    def test_replicate_drain_releases_shared_segment_once(self, indexed):
        replica_set = make_set(indexed, "replicate", 3)
        assert len(replica_set._segments) == 1  # one segment, three attachments
        replica_set.drain()

    def test_scatter_has_one_segment_per_shard(self, indexed):
        replica_set = make_set(indexed, "scatter", 3)
        assert len(replica_set._segments) == 3
        replica_set.drain()
