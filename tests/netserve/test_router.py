"""Scatter/gather routing: stitching parity and sick-owner isolation.

The contract under test: ``ScatterGatherStore.lookup_trial`` equals the
root store's ``lookup_trial`` bit for bit — whatever the shard layout,
however many owners are sick, and for every edge the placement can
produce (empty shards, duplicate boundaries, single-trial stores).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.store import ColumnarSketchStore
from repro.errors import ServiceError
from repro.netserve import ScatterGatherStore, ScatterPlacement
from repro.netserve.router import LookupLane
from repro.parallel.faults import FaultPlan, FaultSpec
from repro.service.health import OPEN, CircuitBreaker
from repro.service.metrics import ServiceMetrics

N_SUBJECTS = 20


def make_store(rng, *, trials=4, per_trial=250, value_span=1 << 14):
    keys = []
    for _ in range(trials):
        values = rng.integers(0, value_span, size=per_trial, dtype=np.uint64)
        subjects = rng.integers(0, N_SUBJECTS, size=per_trial, dtype=np.uint64)
        keys.append(np.unique((values << np.uint64(32)) | subjects))
    return ColumnarSketchStore.from_trial_keys(keys, N_SUBJECTS)


def make_router(store, n_replicas, *, faults=None, breakers=None):
    placement = ScatterPlacement(n_replicas)
    shards = placement.plan(store)
    lanes = [
        LookupLane(
            i, shards[i].store,
            breaker=(
                breakers[i] if breakers is not None
                else CircuitBreaker(failure_threshold=0)
            ),
            metrics=ServiceMetrics(window=64),
            capacity=64,
            faults=faults,
        )
        for i in range(n_replicas)
    ]
    return ScatterGatherStore(lanes, placement, store), lanes


def assert_lookup_parity(virtual, store, queries):
    for t in range(store.trials):
        want = store.lookup_trial(t, queries)
        got = virtual.lookup_trial(t, queries)
        assert np.array_equal(want.query_index, got.query_index)
        assert np.array_equal(want.subjects, got.subjects)


class TestStitchingParity:
    @pytest.mark.parametrize("n_replicas", [1, 2, 3, 5])
    def test_scatter_equals_unsharded_lookup(self, rng, n_replicas):
        store = make_store(rng)
        queries = rng.integers(0, 1 << 15, size=120, dtype=np.uint64)
        virtual, lanes = make_router(store, n_replicas)
        try:
            assert_lookup_parity(virtual, store, queries)
        finally:
            for lane in lanes:
                lane.close()

    def test_misses_and_empty_query_batches(self, rng):
        store = make_store(rng, value_span=1 << 10)
        virtual, lanes = make_router(store, 3)
        try:
            # a batch with no hits anywhere
            misses = np.arange(1 << 20, (1 << 20) + 50, dtype=np.uint64)
            hits = virtual.lookup_trial(0, misses)
            assert len(hits.query_index) == 0 and len(hits.subjects) == 0
            # the empty batch
            empty = np.empty(0, dtype=np.uint64)
            hits = virtual.lookup_trial(1, empty)
            assert len(hits.query_index) == 0
        finally:
            for lane in lanes:
                lane.close()

    def test_duplicate_boundaries_and_empty_shards(self, rng):
        """One hot value collapses the split; parity must survive it."""
        values = np.full(80, 1234, dtype=np.uint64)
        subjects = np.arange(80, dtype=np.uint64) % N_SUBJECTS
        keys = [np.unique((values << np.uint64(32)) | subjects)]
        store = ColumnarSketchStore.from_trial_keys(keys, N_SUBJECTS)
        virtual, lanes = make_router(store, 4)
        try:
            queries = np.array([0, 1233, 1234, 1235, 9999], dtype=np.uint64)
            assert_lookup_parity(virtual, store, queries)
        finally:
            for lane in lanes:
                lane.close()

    def test_single_trial_store(self, rng):
        store = make_store(rng, trials=1)
        queries = rng.integers(0, 1 << 15, size=60, dtype=np.uint64)
        virtual, lanes = make_router(store, 3)
        try:
            assert_lookup_parity(virtual, store, queries)
        finally:
            for lane in lanes:
                lane.close()

    def test_lane_count_must_match_placement(self, rng):
        store = make_store(rng)
        placement = ScatterPlacement(3)
        placement.plan(store)
        with pytest.raises(ServiceError, match="lanes"):
            ScatterGatherStore([], placement, store)


class TestSickOwnerIsolation:
    def test_open_breaker_owner_falls_back_inline(self, rng):
        """An open breaker quarantines one lane; answers stay identical."""
        store = make_store(rng)
        breakers = [
            CircuitBreaker(failure_threshold=1, cooldown_batches=10_000)
            for _ in range(3)
        ]
        virtual, lanes = make_router(store, 3, breakers=breakers)
        try:
            breakers[1].record_failure()
            assert breakers[1].state == OPEN
            queries = rng.integers(0, 1 << 15, size=100, dtype=np.uint64)
            assert_lookup_parity(virtual, store, queries)
            assert virtual.stats.fallbacks > 0
            assert virtual.stats.scattered > 0
        finally:
            for lane in lanes:
                lane.close()

    def test_closed_lane_falls_back_inline(self, rng):
        store = make_store(rng)
        virtual, lanes = make_router(store, 3)
        lanes[0].close()  # submit now raises ServiceClosedError
        try:
            queries = rng.integers(0, 1 << 15, size=100, dtype=np.uint64)
            assert_lookup_parity(virtual, store, queries)
            assert virtual.stats.fallbacks > 0
        finally:
            for lane in lanes[1:]:
                lane.close()

    def test_permanent_fault_exhausts_retries_then_falls_back(self, rng):
        """A fault the retry budget cannot clear still costs no correctness."""
        store = make_store(rng)
        plan = FaultPlan([
            FaultSpec(kind="crash", phase="map", block=2, times=None),
        ])
        virtual, lanes = make_router(store, 3, faults=plan)
        try:
            queries = rng.integers(0, 1 << 15, size=100, dtype=np.uint64)
            assert_lookup_parity(virtual, store, queries)
            assert virtual.stats.fallbacks > 0
        finally:
            for lane in lanes:
                lane.close()

    def test_recoverable_fault_is_retried_without_fallback(self, rng):
        store = make_store(rng)
        plan = FaultPlan([
            FaultSpec(kind="crash", phase="map", block=1, times=1),
        ])
        virtual, lanes = make_router(store, 3, faults=plan)
        try:
            queries = rng.integers(0, 1 << 15, size=100, dtype=np.uint64)
            assert_lookup_parity(virtual, store, queries)
            assert virtual.stats.fallbacks == 0  # retry_call absorbed it
        finally:
            for lane in lanes:
                lane.close()
