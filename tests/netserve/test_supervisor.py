"""Fleet supervision: kill → detect → respawn → parity → re-admit.

The tentpole claims under test: a SIGKILL-style replica death never
changes mapping bytes (hedged fallback serves its shares meanwhile), the
supervisor detects the corpse and respawns it at the current generation,
re-admission requires a bit-identical parity probe, the orphaned shm
segment is reclaimed exactly once (no leaks), and full scatter
throughput returns after repair — no permanent inline fallback.
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np
import pytest

from repro import JEMConfig, JEMMapper
from repro.errors import ServiceError
from repro.netserve import (
    FleetSupervisor,
    ReplicaSet,
    SupervisorConfig,
    make_placement,
)
from repro.parallel.shm import created_segment_names
from repro.seq.records import SequenceSet
from repro.service import ServiceConfig

CONFIG = JEMConfig(k=12, w=20, ell=500, trials=6, seed=99)

# cache off: every map must actually scatter, so the stats assertions
# below observe the lookup path rather than the front door's result cache
SERVICE = ServiceConfig(max_batch_size=8, max_wait_ms=1.0, cache_capacity=0)

#: deterministic fast-probe supervision for test-driven ticks
SUPERVISION = SupervisorConfig(
    probe_interval_s=0.05, probe_deadline_s=0.2, suspect_strikes=2
)


@pytest.fixture
def indexed(tiling_contigs):
    mapper = JEMMapper(CONFIG, store_kind="columnar")
    mapper.index(tiling_contigs)
    return mapper


@pytest.fixture
def sequential(indexed, clean_reads):
    return indexed.map_reads(clean_reads)


def make_set(indexed, kind, n, **kwargs):
    kwargs.setdefault("service_config", SERVICE)
    return ReplicaSet(
        indexed.table, indexed.subject_names, CONFIG,
        placement=make_placement(kind, n), **kwargs,
    )


def assert_same_mapping(actual, expected):
    assert actual.segment_names == expected.segment_names
    assert np.array_equal(actual.subject, expected.subject)
    assert np.array_equal(actual.hit_count, expected.hit_count)


def shm_jem_segments() -> set[str]:
    try:
        return {n for n in os.listdir("/dev/shm") if n.startswith("jem-")}
    except FileNotFoundError:  # pragma: no cover - non-Linux fallback
        return set(created_segment_names())


class TestKillDetectRespawn:
    def test_killed_scatter_replica_is_respawned_and_readmitted(
        self, indexed, clean_reads, sequential
    ):
        with make_set(indexed, "scatter", 3, hedge_timeout_s=0.2) as rs:
            supervisor = FleetSupervisor(rs, SUPERVISION)
            assert_same_mapping(rs.map_reads(clean_reads), sequential)

            rs.kill_replica(1)
            assert supervisor.probe(1) == "dead"
            # while the corpse is down, answers stay exact via fallback
            assert_same_mapping(rs.map_reads(clean_reads), sequential)

            verdicts = supervisor.tick()
            assert verdicts[1] == "dead"
            assert rs.respawns == 1
            assert supervisor.probe(1) == "healthy"

            # healthz narrates detection → respawn → re-admission
            health = rs.healthz()
            assert health["supervisor"]["respawns"] == 1
            assert health["supervisor"]["states"] == ["healthy"] * 3
            hops = [
                (t["from"], t["to"])
                for t in health["supervisor"]["transitions"]
                if t["replica"] == 1
            ]
            assert ("healthy", "respawning") in hops
            assert ("respawning", "healthy") in hops

            # full scatter throughput is restored: the respawned owner
            # serves its shares again, nothing stays inline-fallback
            before = rs.scatter_stats.as_dict()
            assert_same_mapping(rs.map_reads(clean_reads), sequential)
            after = rs.scatter_stats.as_dict()
            assert after["scattered"] > before["scattered"]
            assert after["fallbacks"] == before["fallbacks"]

    def test_respawn_metrics_are_observable(self, indexed, clean_reads):
        with make_set(indexed, "scatter", 3) as rs:
            supervisor = FleetSupervisor(rs, SUPERVISION)
            rs.kill_replica(0)
            supervisor.tick()
            snapshot = rs.metrics_snapshot()
            assert (
                snapshot["aggregate"]["counters"]["replica_respawns_total"] >= 1
            )
            # the supervisor's own registry rides in the aggregation
            assert any(
                s.get("labels", {}).get("replica") == "supervisor"
                for s in snapshot["replicas"]
            )

    def test_killed_replicate_member_is_respawned(
        self, indexed, clean_reads, sequential
    ):
        with make_set(indexed, "replicate", 3) as rs:
            supervisor = FleetSupervisor(rs, SUPERVISION)
            rs.kill_replica(0)
            # routing skips the corpse; the set still answers exactly
            assert_same_mapping(rs.map_reads(clean_reads), sequential)
            verdicts = supervisor.tick()
            assert verdicts[0] == "dead"
            assert rs.respawns == 1
            assert_same_mapping(rs.map_reads(clean_reads), sequential)
            served = [
                r.service.metrics.snapshot()["counters"]["requests_total"]
                for r in rs.replicas
            ]
            assert served[0] > 0  # the respawned member takes reads again


class TestWedgeAndHedge:
    def test_wedged_owner_is_hedged_then_escalated(
        self, indexed, clean_reads, sequential
    ):
        with make_set(indexed, "scatter", 3, hedge_timeout_s=0.1) as rs:
            supervisor = FleetSupervisor(
                rs,
                SupervisorConfig(
                    probe_interval_s=0.05,
                    probe_deadline_s=0.05,
                    suspect_strikes=2,
                ),
            )
            rs.wedge_replica(2, seconds=30.0)
            # in-flight requests flow via hedged inline recompute, exact
            assert_same_mapping(rs.map_reads(clean_reads), sequential)
            stats = rs.scatter_stats.as_dict()
            assert stats["hedged"] > 0
            assert stats["fallbacks"] >= stats["hedged"]
            assert rs._frontdoor.metrics.hedged_requests_total.value > 0

            verdicts = supervisor.tick()
            assert verdicts[2] == "wedged"
            assert rs.respawns == 0  # one strike is not a conviction
            assert supervisor.status()["states"][2] == "suspect"
            verdicts = supervisor.tick()
            assert verdicts[2] == "wedged"
            assert rs.respawns == 1  # second strike escalates to respawn
            assert supervisor.probe(2) == "healthy"
            assert_same_mapping(rs.map_reads(clean_reads), sequential)

    def test_healthy_fleet_never_respawns(self, indexed, clean_reads):
        with make_set(indexed, "scatter", 3) as rs:
            supervisor = FleetSupervisor(rs, SUPERVISION)
            rs.map_reads(clean_reads)
            for _ in range(3):
                assert supervisor.tick() == ["healthy"] * 3
            assert rs.respawns == 0
            assert supervisor.status()["respawns"] == 0


class TestShmHygiene:
    def test_kill_cycle_leaks_no_segments(self, indexed, clean_reads):
        baseline = shm_jem_segments()
        rs = make_set(indexed, "scatter", 3)
        supervisor = FleetSupervisor(rs, SUPERVISION)
        try:
            assert len(shm_jem_segments() - baseline) == 3
            rs.kill_replica(1)
            # the corpse's segment is orphaned until the supervisor sweeps
            assert len(shm_jem_segments() - baseline) == 3
            supervisor.tick()  # respawn: reclaim exactly once, republish
            assert len(shm_jem_segments() - baseline) == 3
            rs.map_reads(clean_reads)
        finally:
            rs.drain()
        assert shm_jem_segments() - baseline == set()
        assert not any(
            name in shm_jem_segments() for name in created_segment_names()
        )

    def test_rolling_restart_conserves_segments(self, indexed):
        baseline = shm_jem_segments()
        rs = make_set(indexed, "scatter", 3)
        try:
            rs.rolling_restart()
            assert len(shm_jem_segments() - baseline) == 3
        finally:
            rs.drain()
        assert shm_jem_segments() - baseline == set()


class TestRollingRestart:
    def test_rolling_restart_is_sequential_and_exact(
        self, indexed, clean_reads, sequential
    ):
        with make_set(indexed, "scatter", 3) as rs:
            assert_same_mapping(rs.map_reads(clean_reads), sequential)
            out = rs.rolling_restart()
            assert out["restarted"] == [0, 1, 2]
            assert rs.respawns == 3
            assert len(rs._segments) == 3  # fleet back at full strength
            assert_same_mapping(rs.map_reads(clean_reads), sequential)
            health = rs.healthz()
            assert health["ready"] and health["generations_agree"]

    def test_respawn_readopts_current_generation(self, indexed, clean_reads):
        extra = SequenceSet.from_strings(
            [("novel_contig", "ACGTTGCA" * 200)]
        )
        with make_set(indexed, "scatter", 3) as rs:
            rs.add_contigs(extra)
            generation = rs.index_generation
            assert generation >= 1
            rs.kill_replica(2)
            FleetSupervisor(rs, SUPERVISION).tick()
            assert rs.respawns == 1
            health = rs.healthz()
            assert health["generations_agree"]
            assert health["index_generation"] == generation
            # the respawned shard answers for the post-mutation index
            novel = rs.submit("probe", "ACGTTGCA" * 200).result(30)
            assert novel.subject_names[0] == "novel_contig"


class TestRespawnSafety:
    def test_respawn_on_drained_set_is_refused(self, indexed):
        rs = make_set(indexed, "scatter", 2)
        rs.drain()
        from repro.errors import ServiceClosedError

        with pytest.raises(ServiceClosedError):
            rs.respawn_replica(0)

    def test_respawn_budget_caps_crash_loops(self, indexed):
        with make_set(indexed, "scatter", 3) as rs:
            supervisor = FleetSupervisor(
                rs,
                SupervisorConfig(
                    probe_interval_s=0.05,
                    probe_deadline_s=0.2,
                    max_respawns=1,
                ),
            )
            rs.kill_replica(0)
            supervisor.tick()
            assert rs.respawns == 1
            rs.kill_replica(1)
            supervisor.tick()
            assert rs.respawns == 1  # budget spent: no second repair
            assert supervisor.status()["states"][1] == "dead"

    def test_wedge_requires_scatter(self, indexed):
        with make_set(indexed, "replicate", 2) as rs:
            with pytest.raises(ServiceError, match="scatter"):
                rs.wedge_replica(0, 1.0)

    def test_supervisor_thread_lifecycle(self, indexed):
        with make_set(indexed, "scatter", 2) as rs:
            with FleetSupervisor(rs, SUPERVISION) as supervisor:
                assert supervisor.running
            assert not supervisor.running


class TestLaneThreadLifetime:
    """A stalled worker must never outlive its segment's mapping.

    Regression: a lane wedged past ``close()``'s join used to keep
    sleeping after the set drained and released its shm segments, then
    wake with a task in hand and segfault the whole process on the
    unmapped store views — minutes later, in whatever test happened to
    be running.  Kill and drain must bound the thread's lifetime, and
    respawn must join the old worker before unmapping its segment.
    """

    @staticmethod
    def _lane_threads():
        return [
            t for t in threading.enumerate()
            if t.name.startswith("jem-lookup-") and t.is_alive()
        ]

    def test_killed_wedged_lane_exits_promptly(self, indexed, clean_reads):
        with make_set(indexed, "scatter", 3, hedge_timeout_s=0.05) as rs:
            rs.wedge_replica(1, seconds=600.0)
            # the wedged owner is now asleep holding an in-flight task
            rs.map_reads(clean_reads)
            lane = rs._lanes[1]
            rs.kill_replica(1)
            assert lane.join(5.0), "killed lane thread failed to exit"
            # its segment can therefore be reclaimed and republished
            FleetSupervisor(rs, SUPERVISION).tick()
            assert rs.respawns == 1
            assert rs._deferred_segments == []

    def test_drain_leaves_no_lane_thread_behind(self, indexed, clean_reads):
        rs = make_set(indexed, "scatter", 3, hedge_timeout_s=0.05)
        rs.wedge_replica(2, seconds=600.0)
        rs.map_reads(clean_reads)
        rs.drain()
        deadline = time.monotonic() + 5.0
        while self._lane_threads() and time.monotonic() < deadline:
            time.sleep(0.01)
        assert self._lane_threads() == []
