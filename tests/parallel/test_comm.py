import numpy as np
import pytest

from repro.errors import CommError
from repro.parallel import SerialComm, spmd_run


def test_serial_comm_identity():
    comm = SerialComm()
    assert comm.rank == 0 and comm.size == 1
    assert comm.bcast(42) == 42
    assert comm.gather("x") == ["x"]
    assert comm.allgather(7) == [7]
    arr = np.arange(5, dtype=np.uint64)
    assert np.array_equal(comm.Allgatherv(arr), arr)
    assert comm.bytes_communicated == 0


def test_spmd_single_rank_uses_serial():
    results = spmd_run(lambda comm: (comm.rank, comm.size), 1)
    assert results == [(0, 1)]


def test_spmd_rank_identities():
    results = spmd_run(lambda comm: (comm.rank, comm.size), 4)
    assert results == [(r, 4) for r in range(4)]


def test_bcast():
    def program(comm):
        value = {"data": 99} if comm.rank == 2 else None
        return comm.bcast(value, root=2)

    results = spmd_run(program, 4)
    assert all(r == {"data": 99} for r in results)


def test_gather():
    def program(comm):
        return comm.gather(comm.rank * 10, root=0)

    results = spmd_run(program, 3)
    assert results[0] == [0, 10, 20]
    assert results[1] is None and results[2] is None


def test_allgather():
    results = spmd_run(lambda comm: comm.allgather(comm.rank**2), 4)
    assert all(r == [0, 1, 4, 9] for r in results)


def test_allgatherv_concatenates_in_rank_order():
    def program(comm):
        mine = np.full(comm.rank + 1, comm.rank, dtype=np.uint64)
        return comm.Allgatherv(mine)

    results = spmd_run(program, 3)
    expected = np.array([0, 1, 1, 2, 2, 2], dtype=np.uint64)
    for r in results:
        assert np.array_equal(r, expected)


def test_allgatherv_counts_bytes():
    def program(comm):
        comm.Allgatherv(np.zeros(10, dtype=np.uint64))
        return comm.bytes_communicated

    results = spmd_run(program, 2)
    assert results == [80, 80]


def test_multiple_collectives_in_sequence():
    def program(comm):
        a = comm.allgather(comm.rank)
        comm.barrier()
        b = comm.Allgatherv(np.array([comm.rank], dtype=np.uint64))
        return (a, b.tolist())

    results = spmd_run(program, 4)
    for a, b in results:
        assert a == [0, 1, 2, 3]
        assert b == [0, 1, 2, 3]


def test_rank_exception_propagates():
    def program(comm):
        if comm.rank == 1:
            raise ValueError("boom")
        comm.barrier()
        return comm.rank

    with pytest.raises(CommError, match="rank 1"):
        spmd_run(program, 3)
