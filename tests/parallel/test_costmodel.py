import numpy as np
import pytest

from repro.errors import CommError
from repro.parallel import CostModel, StepTimes, modelled_runtime


def test_allgatherv_p1_free():
    assert CostModel().allgatherv_time(1, 10**9) == 0.0


def test_allgatherv_grows_with_p_and_bytes():
    m = CostModel()
    assert m.allgatherv_time(4, 1000) < m.allgatherv_time(64, 1000)
    assert m.allgatherv_time(8, 1000) < m.allgatherv_time(8, 10**7)


def test_latency_term_log_p():
    m = CostModel(tau=1.0, mu=0.0)
    assert m.allgatherv_time(2, 0) == 1.0
    assert m.allgatherv_time(8, 0) == 3.0
    assert m.allgatherv_time(64, 0) == 6.0


def test_bandwidth_term_scaling():
    m = CostModel(tau=0.0, mu=1e-6)
    t = m.allgatherv_time(4, 1_000_000)
    assert abs(t - 1e-6 * 1_000_000 * 3 / 4) < 1e-9


def test_input_load_time():
    m = CostModel(io_bandwidth=1e6)
    assert m.input_load_time(2, 2_000_000) == 1.0


def test_invalid_constants():
    with pytest.raises(CommError):
        CostModel(tau=-1)
    with pytest.raises(CommError):
        CostModel(io_bandwidth=0)


def test_invalid_p():
    with pytest.raises(CommError):
        CostModel().allgatherv_time(0, 10)


def make_steps():
    return StepTimes(
        load=np.array([1.0, 2.0]),
        sketch=np.array([3.0, 1.0]),
        map=np.array([5.0, 4.0]),
        gather_comm=0.5,
        comm_bytes=1000,
    )


def test_steptimes_makespan():
    s = make_steps()
    assert s.compute_time == 2.0 + 3.0 + 5.0
    assert s.total_time == 10.5
    assert abs(s.comm_fraction - 0.5 / 10.5) < 1e-12


def test_steptimes_breakdown_keys():
    b = make_steps().breakdown()
    assert set(b) == {"input_load", "subject_sketch", "sketch_gather", "query_map"}
    assert b["query_map"] == 5.0


def test_modelled_runtime_consistent():
    s = make_steps()
    m = CostModel(tau=0.0, mu=0.0)
    assert modelled_runtime(s, m) == s.compute_time
