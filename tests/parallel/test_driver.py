import numpy as np
import pytest

from repro.core import JEMConfig, JEMMapper
from repro.errors import CommError
from repro.parallel import CostModel, run_parallel_jem, run_parallel_jem_threaded


CFG = JEMConfig(k=12, w=20, ell=500, trials=8, seed=17)


@pytest.fixture
def sequential_result(tiling_contigs, clean_reads):
    mapper = JEMMapper(CFG)
    mapper.index(tiling_contigs)
    return mapper.map_reads(clean_reads)


@pytest.mark.parametrize("p", [1, 2, 3, 4, 7])
def test_parallel_equals_sequential(tiling_contigs, clean_reads, sequential_result, p):
    run = run_parallel_jem(tiling_contigs, clean_reads, CFG, p=p)
    assert np.array_equal(run.mapping.subject, sequential_result.subject)
    assert np.array_equal(run.mapping.hit_count, sequential_result.hit_count)
    assert run.mapping.segment_names == sequential_result.segment_names


def test_threaded_equals_sequential(tiling_contigs, clean_reads, sequential_result):
    mapping = run_parallel_jem_threaded(tiling_contigs, clean_reads, CFG, p=4)
    assert np.array_equal(mapping.subject, sequential_result.subject)
    assert mapping.segment_names == sequential_result.segment_names


def test_segment_infos_globalised(tiling_contigs, clean_reads):
    run = run_parallel_jem(tiling_contigs, clean_reads, CFG, p=3)
    read_indices = [si.read_index for si in run.mapping.infos]
    assert read_indices == [i for r in range(len(clean_reads)) for i in (r, r)]


def test_step_times_recorded(tiling_contigs, clean_reads):
    run = run_parallel_jem(tiling_contigs, clean_reads, CFG, p=4)
    assert run.steps.p == 4
    assert (run.steps.sketch >= 0).all()
    assert (run.steps.map > 0).any()
    assert run.steps.comm_bytes > 0
    assert run.total_time > 0


def test_comm_bytes_grow_with_table(tiling_contigs, clean_reads):
    small = run_parallel_jem(tiling_contigs, clean_reads, CFG.with_trials(2), p=2)
    big = run_parallel_jem(tiling_contigs, clean_reads, CFG.with_trials(8), p=2)
    assert big.steps.comm_bytes > small.steps.comm_bytes


def test_throughput_positive(tiling_contigs, clean_reads):
    run = run_parallel_jem(tiling_contigs, clean_reads, CFG, p=2)
    assert run.query_throughput > 0
    assert run.n_segments == 2 * len(clean_reads)


def test_invalid_p(tiling_contigs, clean_reads):
    with pytest.raises(CommError):
        run_parallel_jem(tiling_contigs, clean_reads, CFG, p=0)


def test_more_ranks_than_work(tiling_contigs, clean_reads):
    run = run_parallel_jem(tiling_contigs, clean_reads, CFG, p=16)
    seq = JEMMapper(CFG)
    seq.index(tiling_contigs)
    assert np.array_equal(run.mapping.subject, seq.map_reads(clean_reads).subject)


def test_custom_cost_model(tiling_contigs, clean_reads):
    slow_net = CostModel(tau=1.0, mu=1e-3)
    run = run_parallel_jem(tiling_contigs, clean_reads, CFG, p=4, cost_model=slow_net)
    assert run.steps.gather_comm > 1.0
    assert run.steps.comm_fraction > 0.5
