"""Fault matrix: crash / straggler / corrupt / drop / worker-death across
the simulated SPMD driver, the ThreadComm world, and the multiprocessing
backend.  The invariant under test: any *recoverable* fault plan yields a
mapping bit-identical to the sequential JEMMapper's, and recovery cost is
visible in the accounting."""

import time

import numpy as np
import pytest

from repro.core import JEMConfig, JEMMapper
from repro.errors import (
    CommError,
    FaultError,
    PartialResultError,
    RankTimeoutError,
)
from repro.parallel import (
    FaultPlan,
    FaultSpec,
    RecoveryReport,
    RetryPolicy,
    map_reads_multiprocess,
    run_parallel_jem,
    run_parallel_jem_threaded,
    spmd_run,
)

CFG = JEMConfig(k=12, w=20, ell=500, trials=6, seed=21)
POLICY = RetryPolicy(max_attempts=3, base_delay=0.001, max_delay=0.005)


@pytest.fixture(scope="module")
def world():
    from repro.seq import SequenceSet, SequenceSetBuilder, decode, random_codes

    rng = np.random.default_rng(99)
    genome = random_codes(15_000, rng)
    contigs = []
    pos = 0
    i = 0
    while pos < genome.size:
        end = min(pos + 1_500, genome.size)
        contigs.append((f"c{i}", decode(genome[pos:end])))
        pos = end
        i += 1
    builder = SequenceSetBuilder()
    for j in range(12):
        start = int(rng.integers(0, genome.size - 4_000))
        builder.add(f"r{j}", genome[start : start + 4_000])
    return SequenceSet.from_strings(contigs), builder.build()


@pytest.fixture(scope="module")
def expected(world):
    contigs, reads = world
    mapper = JEMMapper(CFG)
    mapper.index(contigs)
    return mapper.map_reads(reads)


def assert_identical(got, want):
    assert np.array_equal(got.subject, want.subject)
    assert np.array_equal(got.hit_count, want.hit_count)
    assert got.segment_names == want.segment_names


# -- simulated SPMD driver -----------------------------------------------------

SIM_PLANS = {
    "crash_sketch": [FaultSpec("crash", "sketch", 1, times=1)],
    "crash_map": [FaultSpec("crash", "map", 2, times=2)],
    "straggler": [FaultSpec("straggler", "map", 0, times=1, delay=0.02)],
    "corrupt_gather": [FaultSpec("corrupt", "gather", 0, times=1)],
    "drop_gather": [FaultSpec("drop", "gather", 3, times=1)],
    "dead_rank_redispatch": [FaultSpec("worker_death", "map", 1, times=None)],
    "mixed": [
        FaultSpec("crash", "sketch", 0, times=1),
        FaultSpec("straggler", "sketch", 2, times=1, delay=0.01),
        FaultSpec("corrupt", "gather", 1, times=1),
        FaultSpec("crash", "map", 3, times=None),  # permanent but rank-scoped
    ],
}


@pytest.mark.parametrize("name", sorted(SIM_PLANS))
def test_simulated_fault_matrix(world, expected, name):
    contigs, reads = world
    plan = FaultPlan(SIM_PLANS[name])
    assert plan.recoverable
    run = run_parallel_jem(contigs, reads, CFG, p=4, faults=plan, retry=POLICY)
    assert_identical(run.mapping, expected)
    assert run.complete
    assert plan.total_fired > 0
    assert run.recovery_time > 0  # acceptance: faults leave a timing trace
    assert run.steps.total_time >= run.steps.compute_time + run.steps.gather_comm
    assert "recovery" in run.steps.breakdown()


def test_simulated_clean_run_has_no_recovery(world, expected):
    contigs, reads = world
    run = run_parallel_jem(contigs, reads, CFG, p=4)
    assert_identical(run.mapping, expected)
    assert run.recovery_time == 0.0
    assert "recovery" not in run.steps.breakdown()


def test_simulated_gather_retries_counted(world):
    contigs, reads = world
    plan = FaultPlan([FaultSpec("corrupt", "gather", 2, times=2)])
    run = run_parallel_jem(contigs, reads, CFG, p=4, faults=plan, retry=POLICY)
    assert run.steps.gather_retries == 2
    assert run.steps.regather_comm > 0


def test_simulated_permanent_gather_corruption_fatal(world):
    contigs, reads = world
    plan = FaultPlan([FaultSpec("corrupt", "gather", 0, times=None)])
    with pytest.raises(CommError):
        run_parallel_jem(contigs, reads, CFG, p=4, faults=plan, retry=POLICY)


def test_simulated_unrecoverable_strict_raises(world):
    contigs, reads = world
    plan = FaultPlan([FaultSpec("crash", "map", 1, times=None, unit_scoped=True)])
    assert not plan.recoverable
    with pytest.raises(PartialResultError) as excinfo:
        run_parallel_jem(contigs, reads, CFG, p=4, faults=plan, retry=POLICY)
    assert len(excinfo.value.failed_reads) > 0


def test_simulated_unrecoverable_degrades_gracefully(world, expected):
    from repro.parallel.partition import partition_set

    contigs, reads = world
    plan = FaultPlan([FaultSpec("crash", "map", 1, times=None, unit_scoped=True)])
    run = run_parallel_jem(
        contigs, reads, CFG, p=4, faults=plan, retry=POLICY, strict=False
    )
    lost = tuple(partition_set(reads, 4)[1].names)
    assert not run.complete
    assert run.partial.failed_blocks == (1,)
    assert run.partial.failed_reads == lost  # exactly the affected reads
    # surviving blocks still match the sequential mapping for their reads
    lost_set = set(lost)
    kept = [
        i for i, name in enumerate(expected.segment_names)
        if name.rsplit("/", 1)[0] not in lost_set
    ]
    assert kept and len(kept) == len(expected) - 2 * len(lost)
    assert run.mapping.segment_names == [expected.segment_names[i] for i in kept]
    assert np.array_equal(run.mapping.subject, expected.subject[kept])
    assert np.array_equal(run.mapping.hit_count, expected.hit_count[kept])


def test_simulated_sketch_block_lost_everywhere_is_fatal(world):
    contigs, reads = world
    plan = FaultPlan([FaultSpec("crash", "sketch", 0, times=None, unit_scoped=True)])
    with pytest.raises(FaultError):
        run_parallel_jem(
            contigs, reads, CFG, p=4, faults=plan, retry=POLICY, strict=False
        )


@pytest.mark.parametrize("seed", range(8))
def test_property_seeded_recoverable_plans(world, expected, seed):
    """Any seeded recoverable FaultPlan yields output identical to sequential."""
    contigs, reads = world
    plan = FaultPlan.seeded(seed, 5, delay=0.005)
    assert plan.recoverable
    run = run_parallel_jem(contigs, reads, CFG, p=5, faults=plan, retry=POLICY)
    assert_identical(run.mapping, expected)
    assert run.recovery_time > 0


def test_seeded_unrecoverable_plan_degrades(world):
    contigs, reads = world
    plan = FaultPlan.seeded(11, 4, recoverable=False)
    assert not plan.recoverable
    run = run_parallel_jem(
        contigs, reads, CFG, p=4, faults=plan, retry=POLICY, strict=False
    )
    assert run.partial is not None
    assert run.partial.n_failed > 0


# -- ThreadComm world ----------------------------------------------------------

THREADED_PLANS = {
    "crash_sketch": [FaultSpec("crash", "sketch", 0, times=1)],
    "crash_map": [FaultSpec("crash", "map", 2, times=1)],
    "straggler": [FaultSpec("straggler", "sketch", 1, times=1, delay=0.01)],
    "corrupt_gather": [FaultSpec("corrupt", "gather", 1, times=1)],
    "drop_gather": [FaultSpec("drop", "gather", 2, times=1)],
}


@pytest.mark.parametrize("name", sorted(THREADED_PLANS))
def test_threaded_fault_matrix(world, expected, name):
    contigs, reads = world
    plan = FaultPlan(THREADED_PLANS[name])
    mapping = run_parallel_jem_threaded(
        contigs, reads, CFG, p=4, faults=plan, retry=POLICY
    )
    assert_identical(mapping, expected)
    assert plan.total_fired > 0


def test_spmd_straggler_timeout_names_stuck_ranks():
    def program(comm):
        if comm.rank == 1:
            time.sleep(3.0)
        comm.barrier()
        return comm.rank

    with pytest.raises(RankTimeoutError) as excinfo:
        spmd_run(program, 2, timeout=0.2)
    assert 1 in excinfo.value.ranks
    assert isinstance(excinfo.value, CommError)  # subclass contract


# -- multiprocessing backend ---------------------------------------------------

MP_PLANS = {
    "crash_sketch": [FaultSpec("crash", "sketch", 0, times=1)],
    "crash_map": [FaultSpec("crash", "map", 1, times=2)],
    "straggler": [FaultSpec("straggler", "map", 0, times=1, delay=0.05)],
}


@pytest.mark.parametrize("name", sorted(MP_PLANS))
def test_mp_fault_matrix(world, expected, name):
    contigs, reads = world
    plan = FaultPlan(MP_PLANS[name])
    report = RecoveryReport()
    got = map_reads_multiprocess(
        contigs, reads, CFG, processes=2, mp_context="fork",
        faults=plan, retry=POLICY, timeout=30.0, report=report,
    )
    assert_identical(got, expected)
    assert report.partial is None
    assert plan.total_fired > 0


def test_mp_worker_death_redispatch(world, expected):
    """A worker that dies hard (os._exit) is noticed via the unit timeout
    and its block re-dispatched; output stays bit-identical."""
    contigs, reads = world
    plan = FaultPlan([FaultSpec("worker_death", "sketch", 0, times=1)])
    report = RecoveryReport()
    got = map_reads_multiprocess(
        contigs, reads, CFG, processes=2, mp_context="fork",
        faults=plan, retry=POLICY, timeout=2.0, report=report,
    )
    assert_identical(got, expected)
    assert report.redispatches >= 1
    assert report.recovery_seconds > 0


def test_mp_unrecoverable_strict_raises(world):
    contigs, reads = world
    plan = FaultPlan([FaultSpec("crash", "map", 1, times=None, unit_scoped=True)])
    with pytest.raises(PartialResultError) as excinfo:
        map_reads_multiprocess(
            contigs, reads, CFG, processes=2, mp_context="fork",
            faults=plan, retry=POLICY, timeout=30.0,
        )
    assert len(excinfo.value.failed_reads) > 0


def test_mp_unrecoverable_degrades_gracefully(world, expected):
    from repro.parallel.partition import partition_set

    contigs, reads = world
    plan = FaultPlan([FaultSpec("crash", "map", 1, times=None, unit_scoped=True)])
    report = RecoveryReport()
    got = map_reads_multiprocess(
        contigs, reads, CFG, processes=2, mp_context="fork",
        faults=plan, retry=POLICY, timeout=30.0, strict=False, report=report,
    )
    lost = tuple(partition_set(reads, 2)[1].names)
    assert report.partial is not None
    assert report.partial.failed_reads == lost
    assert len(got) == len(expected) - 2 * len(lost)


# -- retry policy --------------------------------------------------------------

def test_retry_schedule_deterministic():
    policy = RetryPolicy(max_attempts=4, base_delay=0.1, jitter=0.5, seed=7)
    assert list(policy.delays(stream=3)) == list(policy.delays(stream=3))
    assert list(policy.delays(stream=3)) != list(policy.delays(stream=4))


def test_retry_jitter_from_explicit_generator():
    """Two policies built from same-seed Generators share one schedule."""
    make = lambda: RetryPolicy(  # noqa: E731 - tiny local factory
        max_attempts=4, base_delay=0.1, jitter=0.5,
        rng=np.random.default_rng(42),
    )
    a, b = make(), make()
    for stream in range(4):
        assert list(a.delays(stream=stream)) == list(b.delays(stream=stream))
    other = RetryPolicy(max_attempts=4, base_delay=0.1, jitter=0.5,
                        rng=np.random.default_rng(43))
    assert list(a.delays()) != list(other.delays())


def test_retry_seed_and_rng_are_mutually_exclusive():
    from repro.errors import ReproError

    with pytest.raises(ReproError, match="not both"):
        RetryPolicy(seed=5, rng=np.random.default_rng(1))


def test_retry_backoff_grows_and_caps():
    policy = RetryPolicy(max_attempts=5, base_delay=0.1, backoff=2.0,
                         max_delay=0.25, jitter=0.0)
    assert list(policy.delays()) == [0.1, 0.2, 0.25, 0.25]


def test_retry_call_recovers_and_chains_cause():
    from repro.parallel import retry_call

    calls = []

    def flaky(attempt):
        calls.append(attempt)
        if attempt < 2:
            raise FaultError("boom")
        return "ok"

    policy = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)
    result, attempts, recovery = retry_call(flaky, policy=policy)
    assert result == "ok" and attempts == 3 and calls == [0, 1, 2]

    def hopeless(attempt):
        raise FaultError("always")

    with pytest.raises(FaultError) as excinfo:
        retry_call(hopeless, policy=policy)
    assert isinstance(excinfo.value.__cause__, FaultError)  # root cause kept


def test_fault_plan_consume_is_scoped():
    plan = FaultPlan([
        FaultSpec("crash", "map", 1, times=1),                    # rank-scoped
        FaultSpec("crash", "map", 2, times=None, unit_scoped=True),
    ])
    # rank-scoped: fires on the executing rank, not on re-dispatch (-1)
    assert plan.consume("map", block=1, exec_rank=1)
    assert not plan.consume("map", block=1, exec_rank=1)  # budget spent
    # unit-scoped: follows block 2 to any executor
    assert plan.consume("map", block=2, exec_rank=0)
    assert plan.consume("map", block=2, exec_rank=-1)
    # other phases untouched
    assert not plan.consume("sketch", block=2, exec_rank=2)
