import numpy as np
import pytest

from repro.core import JEMConfig, JEMMapper
from repro.errors import CommError
from repro.parallel.mp_backend import map_reads_multiprocess


CFG = JEMConfig(k=12, w=20, ell=500, trials=6, seed=21)


@pytest.fixture(scope="module")
def world():
    from repro.seq import SequenceSet, SequenceSetBuilder, decode, random_codes

    rng = np.random.default_rng(77)
    genome = random_codes(15_000, rng)
    contigs = []
    pos = 0
    i = 0
    while pos < genome.size:
        end = min(pos + 1_500, genome.size)
        contigs.append((f"c{i}", decode(genome[pos:end])))
        pos = end
        i += 1
    builder = SequenceSetBuilder()
    for j in range(10):
        start = int(rng.integers(0, genome.size - 4_000))
        builder.add(f"r{j}", genome[start : start + 4_000])
    return SequenceSet.from_strings(contigs), builder.build()


def test_single_process_path(world):
    contigs, reads = world
    seq = JEMMapper(CFG)
    seq.index(contigs)
    expected = seq.map_reads(reads)
    got = map_reads_multiprocess(contigs, reads, CFG, processes=1)
    assert np.array_equal(got.subject, expected.subject)
    assert got.segment_names == expected.segment_names


@pytest.mark.parametrize("processes", [2, 3])
def test_multiprocess_matches_sequential(world, processes):
    contigs, reads = world
    seq = JEMMapper(CFG)
    seq.index(contigs)
    expected = seq.map_reads(reads)
    got = map_reads_multiprocess(contigs, reads, CFG, processes=processes)
    assert np.array_equal(got.subject, expected.subject)
    assert np.array_equal(got.hit_count, expected.hit_count)
    assert got.segment_names == expected.segment_names


def test_infos_globalised(world):
    contigs, reads = world
    got = map_reads_multiprocess(contigs, reads, CFG, processes=2)
    assert [si.read_index for si in got.infos] == [
        i for r in range(len(reads)) for i in (r, r)
    ]


def test_invalid_processes(world):
    contigs, reads = world
    with pytest.raises(CommError):
        map_reads_multiprocess(contigs, reads, CFG, processes=0)
