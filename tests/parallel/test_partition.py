import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CommError
from repro.parallel import partition_bounds, partition_imbalance, partition_set
from repro.seq import SequenceSet


def make_set(lengths):
    return SequenceSet.from_strings([(f"s{i}", "a" * ln) for i, ln in enumerate(lengths)])


def test_even_partition():
    s = make_set([100] * 8)
    parts = partition_set(s, 4)
    assert [len(p) for p in parts] == [2, 2, 2, 2]
    assert partition_imbalance(parts) == 1.0


def test_partition_conserves_everything():
    s = make_set([10, 200, 5, 300, 70, 42])
    parts = partition_set(s, 3)
    assert sum(len(p) for p in parts) == len(s)
    assert sum(p.total_bases for p in parts) == s.total_bases
    names = [n for p in parts for n in p.names]
    assert names == s.names


def test_more_ranks_than_sequences():
    s = make_set([50, 50])
    parts = partition_set(s, 5)
    assert sum(len(p) for p in parts) == 2
    assert all(len(p) in (0, 1) for p in parts)


def test_single_rank():
    s = make_set([10, 20])
    parts = partition_set(s, 1)
    assert len(parts) == 1 and parts[0].total_bases == 30


def test_invalid_p():
    with pytest.raises(CommError):
        partition_bounds(np.array([0, 5]), 0)


def test_skewed_lengths_balanced():
    s = make_set([1000, 10, 10, 10, 1000, 10, 10, 1000])
    parts = partition_set(s, 3)
    assert partition_imbalance(parts) < 1.5


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(min_value=1, max_value=500), min_size=1, max_size=40),
    st.integers(min_value=1, max_value=10),
)
def test_partition_properties(lengths, p):
    offsets = np.zeros(len(lengths) + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    bounds = partition_bounds(offsets, p)
    assert bounds[0] == 0 and bounds[-1] == len(lengths)
    assert (np.diff(bounds) >= 0).all()
    assert bounds.size == p + 1
