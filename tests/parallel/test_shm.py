"""Shared-memory transport: round-trips, backend parity, fault survival,
and — most importantly — segment lifecycle (nothing may outlive the call,
even when workers die or the phase raises)."""

import glob

import numpy as np
import pytest

from repro.core import JEMConfig, JEMMapper
from repro.errors import CommError, PartialResultError
from repro.parallel import (
    FaultPlan,
    FaultSpec,
    RecoveryReport,
    RetryPolicy,
    map_reads_multiprocess,
)
from repro.parallel import shm
from repro.parallel.partition import partition_bounds

CFG = JEMConfig(k=12, w=20, ell=500, trials=6, seed=21)
POLICY = RetryPolicy(max_attempts=3, base_delay=0.001, max_delay=0.005)


@pytest.fixture(scope="module")
def world():
    from repro.seq import SequenceSet, SequenceSetBuilder, decode, random_codes

    rng = np.random.default_rng(123)
    genome = random_codes(15_000, rng)
    contigs = []
    pos = 0
    i = 0
    while pos < genome.size:
        end = min(pos + 1_500, genome.size)
        contigs.append((f"c{i}", decode(genome[pos:end])))
        pos = end
        i += 1
    builder = SequenceSetBuilder()
    for j in range(10):
        start = int(rng.integers(0, genome.size - 4_000))
        builder.add(f"r{j}", genome[start : start + 4_000], meta={"gt": j})
    return SequenceSet.from_strings(contigs), builder.build()


def _no_leaks():
    assert shm.created_segment_names() == []
    assert glob.glob("/dev/shm/jem-*") == []


# -- array round-trips ---------------------------------------------------------

def test_share_attach_roundtrip():
    arrays = [
        np.arange(17, dtype=np.uint64),
        np.arange(5, dtype=np.int64) - 2,
        np.array([1, 2, 3], dtype=np.uint8),  # forces padding before next
        np.empty(0, dtype=np.uint64),
    ]
    ref = shm.share_arrays(arrays, "test")
    try:
        views = shm.attach_arrays(ref)
        for arr, view in zip(arrays, views):
            assert view.dtype == arr.dtype
            assert np.array_equal(view, arr)
    finally:
        shm.release(ref.name)
    _no_leaks()


def test_release_is_idempotent_and_atexit_safe():
    ref = shm.share_arrays([np.ones(4, dtype=np.uint64)], "test")
    shm.release(ref.name)
    shm.release(ref.name)  # second call is a no-op
    shm.release_all()
    _no_leaks()


def test_attach_vanished_segment_raises_comm_error():
    ref = shm.share_arrays([np.ones(4, dtype=np.uint64)], "test")
    shm.release(ref.name)
    with pytest.raises(CommError):
        shm.attach_arrays(ref)


def test_segment_exists_reports_lifecycle():
    ref = shm.share_arrays([np.ones(4, dtype=np.uint64)], "test")
    assert shm.segment_exists(ref.name)
    shm.release(ref.name)
    assert not shm.segment_exists(ref.name)


def test_shared_sequence_block_materialises_slices(world):
    contigs, reads = world
    bounds = partition_bounds(reads.offsets, 3)
    blocks = shm.share_sequence_set(
        reads, "test", [(int(bounds[r]), int(bounds[r + 1])) for r in range(3)]
    )
    try:
        for r, block in enumerate(blocks):
            part = reads.slice(int(bounds[r]), int(bounds[r + 1]))
            rebuilt = block.materialise()
            assert rebuilt.names == part.names
            assert rebuilt.metas == part.metas  # ground truth rides along
            assert np.array_equal(rebuilt.buffer, part.buffer)
            assert np.array_equal(rebuilt.offsets, part.offsets)
    finally:
        shm.release(blocks[0].ref.name)
    _no_leaks()


def test_shared_table_materialises_sorted_keys():
    keys = [
        np.sort(np.random.default_rng(t).integers(0, 1 << 40, 30).astype(np.uint64))
        for t in range(4)
    ]
    table = shm.share_table_keys(keys, n_subjects=9)
    try:
        rebuilt = table.materialise()
        assert rebuilt.n_subjects == 9
        for a, b in zip(rebuilt.keys, keys):
            assert np.array_equal(a, b)
    finally:
        shm.release(table.ref.name)
    _no_leaks()


# -- backend parity and lifecycle ---------------------------------------------

def test_bad_transport_rejected(world):
    contigs, reads = world
    with pytest.raises(CommError):
        map_reads_multiprocess(contigs, reads, CFG, transport="tcp")


@pytest.mark.parametrize("processes", [2, 3])
def test_shm_transport_matches_pickle_and_sequential(world, processes):
    contigs, reads = world
    seq = JEMMapper(CFG)
    seq.index(contigs)
    expected = seq.map_reads(reads)
    via_shm = map_reads_multiprocess(
        contigs, reads, CFG, processes=processes, mp_context="fork",
        transport="shm",
    )
    via_pickle = map_reads_multiprocess(
        contigs, reads, CFG, processes=processes, mp_context="fork",
        transport="pickle",
    )
    for got in (via_shm, via_pickle):
        assert np.array_equal(got.subject, expected.subject)
        assert np.array_equal(got.hit_count, expected.hit_count)
        assert got.segment_names == expected.segment_names
    _no_leaks()


def test_shm_transport_under_seeded_faults_no_leaks(world):
    contigs, reads = world
    seq = JEMMapper(CFG)
    seq.index(contigs)
    expected = seq.map_reads(reads)
    for seed in (1, 2, 3):
        plan = FaultPlan.seeded(seed, 2, delay=0.005)
        assert plan.recoverable
        report = RecoveryReport()
        got = map_reads_multiprocess(
            contigs, reads, CFG, processes=2, mp_context="fork",
            faults=plan, retry=POLICY, timeout=2.0, report=report,
            transport="shm",
        )
        assert np.array_equal(got.subject, expected.subject)
        _no_leaks()


def test_shm_survives_worker_death_and_pool_rebuild(world):
    """A dead worker triggers the timeout + pool-rebuild path; the fresh
    pool re-attaches to the same segments and nothing leaks."""
    contigs, reads = world
    seq = JEMMapper(CFG)
    seq.index(contigs)
    expected = seq.map_reads(reads)
    plan = FaultPlan(
        [
            FaultSpec("worker_death", "sketch", 0, times=1),
            FaultSpec("worker_death", "map", 1, times=1),
        ]
    )
    report = RecoveryReport()
    got = map_reads_multiprocess(
        contigs, reads, CFG, processes=2, mp_context="fork",
        faults=plan, retry=POLICY, timeout=2.0, report=report,
        transport="shm",
    )
    assert np.array_equal(got.subject, expected.subject)
    assert report.redispatches >= 2
    _no_leaks()


def test_shm_released_on_strict_failure(world):
    """Segments are unlinked even when the phase raises (strict S4 loss)."""
    contigs, reads = world
    plan = FaultPlan([FaultSpec("crash", "map", 1, times=None, unit_scoped=True)])
    with pytest.raises(PartialResultError):
        map_reads_multiprocess(
            contigs, reads, CFG, processes=2, mp_context="fork",
            faults=plan, retry=POLICY, timeout=30.0, transport="shm",
        )
    _no_leaks()
