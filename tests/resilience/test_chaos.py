"""Kill-resume chaos cycles: real SIGKILLs, deterministic plans, parity.

The acceptance bar: over seeded plans that SIGKILL ``jem index`` and
``jem map`` mid-unit (and then vandalise the run directory), a
``--resume`` run completes and its output is bit-identical to an
uninterrupted run — the index by content checksum, the mapping by TSV
body.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

import repro
from repro.cli import main
from repro.errors import ChaosError, CheckpointError
from repro.resilience import ChaosPlan, ChaosSpec, run_kill_resume_cycle
from repro.resilience.chaos import DAMAGE_KINDS, apply_damage, read_tsv_body
from repro.resilience.checkpoint import (
    CHAOS_KILL_AFTER_ENV,
    CHAOS_TORN_ENV,
    LOG_NAME,
    CheckpointLog,
)
from repro.seq.io_fasta import write_fasta

CONFIG_ARGV = ["--k", "12", "--w", "20", "--ell", "500", "--trials", "6",
               "--seed", "99"]
SEEDS = (1, 2, 3, 4, 5)


@pytest.fixture(autouse=True)
def absolute_pythonpath(monkeypatch):
    """The chaos subprocesses must import repro regardless of pytest's cwd."""
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    existing = os.environ.get("PYTHONPATH", "")
    monkeypatch.setenv(
        "PYTHONPATH", src + (os.pathsep + existing if existing else "")
    )


@pytest.fixture
def fasta_world(tmp_path, tiling_contigs, clean_reads):
    contigs = str(tmp_path / "contigs.fasta")
    reads = str(tmp_path / "reads.fasta")
    write_fasta(contigs, tiling_contigs)
    write_fasta(reads, clean_reads)
    return contigs, reads


def index_checksum(path: str) -> int:
    with np.load(path, allow_pickle=False) as data:
        return int(data["checksum"])


class TestChaosPlan:
    def test_seeded_plan_is_deterministic(self):
        a = ChaosPlan.seeded(7, total_units=8)
        b = ChaosPlan.seeded(7, total_units=8)
        assert a == b
        assert a.kill is not None
        assert 1 <= a.kill.after_records <= 8

    def test_env_overlay_arms_the_hooks(self):
        plan = ChaosPlan(seed=0, specs=(ChaosSpec("torn_kill", 3),))
        env = plan.env()
        assert env[CHAOS_KILL_AFTER_ENV] == "3"
        assert env[CHAOS_TORN_ENV] == "1"
        plain = ChaosPlan(seed=0, specs=(ChaosSpec("kill", 2),))
        assert CHAOS_TORN_ENV not in plain.env()

    def test_spec_validation(self):
        with pytest.raises(ChaosError, match="unknown chaos kind"):
            ChaosSpec("meteor")
        with pytest.raises(ChaosError, match="after_records"):
            ChaosSpec("kill", 0)
        with pytest.raises(ChaosError, match="total_units"):
            ChaosPlan.seeded(1, total_units=0)

    def test_apply_damage_is_deterministic(self, tmp_path):
        plan = ChaosPlan(
            seed=11,
            specs=(ChaosSpec("kill", 1),)
            + tuple(ChaosSpec(kind) for kind in DAMAGE_KINDS if kind != "drop_shm"),
        )
        dirs = []
        for name in ("a", "b"):
            run_dir = tmp_path / name
            units = run_dir / "units"
            units.mkdir(parents=True)
            with CheckpointLog(str(run_dir / LOG_NAME)) as log:
                log.append({"phase": "sketch", "block": 0})
            buf = np.arange(64, dtype=np.uint8).tobytes()
            (units / "sketch_0000.npz").write_bytes(buf)
            (units / "sketch_0001.npz.tmp.123").write_bytes(b"torn")
            dirs.append(run_dir)
        done_a = apply_damage(str(dirs[0]), plan)
        done_b = apply_damage(str(dirs[1]), plan)
        assert done_a == done_b
        assert (dirs[0] / LOG_NAME).read_bytes() == (dirs[1] / LOG_NAME).read_bytes()
        assert (dirs[0] / "units" / "sketch_0000.npz").read_bytes() == (
            dirs[1] / "units" / "sketch_0000.npz"
        ).read_bytes()
        assert not (dirs[0] / "units" / "sketch_0001.npz.tmp.123").exists()


class TestKillResumeParity:
    def test_index_kill_resume_parity_across_seeds(self, tmp_path, fasta_world):
        contigs, _ = fasta_world
        reference = str(tmp_path / "reference.npz")
        assert main(["index", "-s", contigs, "-o", reference,
                     "--shards", "4", *CONFIG_ARGV]) == 0
        expected = index_checksum(reference)
        for seed in SEEDS:
            run_dir = str(tmp_path / f"idx{seed}")
            out = os.path.join(run_dir, "out.npz")
            os.makedirs(run_dir, exist_ok=True)
            plan = ChaosPlan.seeded(seed, total_units=4)
            cycle = run_kill_resume_cycle(
                ["index", "-s", contigs, "-o", out, "--shards", "4",
                 "--checkpoint-dir", run_dir, *CONFIG_ARGV],
                run_dir=run_dir, plan=plan,
                resume_argv=["index", "--resume", run_dir],
            )
            assert cycle.killed, f"seed {seed}: victim was not killed"
            assert cycle.resumed_ok, f"seed {seed}: {cycle.resume_stderr}"
            assert index_checksum(out) == expected, f"seed {seed} parity"

    def test_map_kill_resume_parity_across_seeds(self, tmp_path, fasta_world):
        contigs, reads = fasta_world
        reference = str(tmp_path / "reference.tsv")
        assert main(["map", "-q", reads, "-s", contigs, "-o", reference,
                     "-p", "2", *CONFIG_ARGV]) == 0
        expected = read_tsv_body(reference)
        assert expected, "reference mapping produced no rows"
        for seed in SEEDS:
            run_dir = str(tmp_path / f"map{seed}")
            out = os.path.join(run_dir, "out.tsv")
            os.makedirs(run_dir, exist_ok=True)
            plan = ChaosPlan.seeded(seed, total_units=4)
            cycle = run_kill_resume_cycle(
                ["map", "-q", reads, "-s", contigs, "-o", out, "-p", "2",
                 "--checkpoint-dir", run_dir, *CONFIG_ARGV],
                run_dir=run_dir, plan=plan,
                resume_argv=["map", "--resume", run_dir],
            )
            assert cycle.killed, f"seed {seed}: victim was not killed"
            assert cycle.resumed_ok, f"seed {seed}: {cycle.resume_stderr}"
            assert read_tsv_body(out) == expected, f"seed {seed} parity"


class TestResumeCli:
    def test_resume_skips_completed_shards_same_output(
        self, tmp_path, fasta_world, capsys
    ):
        contigs, _ = fasta_world
        run_dir = str(tmp_path / "run")
        out = str(tmp_path / "out.npz")
        argv = ["index", "-s", contigs, "-o", out, "--shards", "3",
                "--checkpoint-dir", run_dir, *CONFIG_ARGV]
        assert main(argv) == 0
        first = index_checksum(out)
        os.unlink(out)
        assert main(["index", "--resume", run_dir]) == 0
        assert index_checksum(out) == first
        # every shard was loaded from the checkpoint, not recomputed
        records = CheckpointLog(os.path.join(run_dir, LOG_NAME)).replay()
        assert len(records) == 3

    def test_resume_refuses_wrong_command(self, tmp_path, fasta_world):
        contigs, _ = fasta_world
        run_dir = str(tmp_path / "run")
        out = str(tmp_path / "out.npz")
        assert main(["index", "-s", contigs, "-o", out, "--shards", "2",
                     "--checkpoint-dir", run_dir, *CONFIG_ARGV]) == 0
        with pytest.raises(CheckpointError, match="jem index"):
            main(["map", "--resume", run_dir])

    def test_resume_of_nonexistent_dir_is_typed(self, tmp_path):
        with pytest.raises(CheckpointError, match="invocation.json"):
            main(["index", "--resume", str(tmp_path / "nope")])

    def test_chaos_subcommand_end_to_end(self, tmp_path, fasta_world, capsys):
        contigs, _ = fasta_world
        rc = main(["chaos", "index", "-s", contigs, "--seeds", "3",
                   "--shards", "3", "--workdir", str(tmp_path / "chaos"),
                   "--keep", *CONFIG_ARGV])
        captured = capsys.readouterr()
        assert rc == 0, captured.err
        assert "1/1 chaos cycles reproduced" in captured.out
