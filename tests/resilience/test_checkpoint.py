"""CheckpointLog framing, torn-tail replay, unit payloads, manifests.

The durability contract under test: after ``append`` returns, the record
survives any crash; a torn or corrupted tail is *discarded* on replay
(never an error); a unit payload that fails its CRC reads as "not done"
so the unit is recomputed rather than trusted.
"""

from __future__ import annotations

import json
import os
import struct

import numpy as np
import pytest

from repro.core.mapper import MappingResult
from repro.core.segments import PREFIX, SUFFIX, SegmentInfo
from repro.errors import CheckpointError
from repro.resilience import CheckpointContext, CheckpointLog, RunManifest
from repro.resilience.checkpoint import LOG_NAME


def log_path(tmp_path) -> str:
    return str(tmp_path / LOG_NAME)


class TestCheckpointLog:
    def test_append_replay_roundtrip(self, tmp_path):
        records = [{"phase": "sketch", "block": b, "crc32": 7 * b} for b in range(5)]
        with CheckpointLog(log_path(tmp_path)) as log:
            for record in records:
                log.append(record)
        assert CheckpointLog(log_path(tmp_path)).replay() == records

    def test_replay_of_missing_file_is_empty(self, tmp_path):
        assert CheckpointLog(log_path(tmp_path)).replay() == []

    def test_garbage_tail_is_dropped_not_fatal(self, tmp_path):
        with CheckpointLog(log_path(tmp_path)) as log:
            log.append({"block": 0})
            log.append({"block": 1})
        with open(log_path(tmp_path), "ab") as fh:
            fh.write(b"JMCK\x40\x00\x00\x00\x00\x00\x00\x00half-a-frame")
        assert CheckpointLog(log_path(tmp_path)).replay() == [
            {"block": 0}, {"block": 1},
        ]

    def test_truncation_loses_only_the_torn_record(self, tmp_path):
        with CheckpointLog(log_path(tmp_path)) as log:
            for b in range(4):
                log.append({"block": b})
        size = os.path.getsize(log_path(tmp_path))
        with open(log_path(tmp_path), "r+b") as fh:
            fh.truncate(size - 3)
        replayed = CheckpointLog(log_path(tmp_path)).replay()
        assert replayed == [{"block": b} for b in range(3)]

    def test_midlog_bitflip_stops_replay_at_damage(self, tmp_path):
        with CheckpointLog(log_path(tmp_path)) as log:
            for b in range(4):
                log.append({"block": b})
        frame = struct.Struct("<4sII")
        payload_len = len(json.dumps({"block": 0}, sort_keys=True).encode())
        # flip one payload byte of record 2
        offset = 2 * (frame.size + payload_len) + frame.size + 1
        with open(log_path(tmp_path), "r+b") as fh:
            fh.seek(offset)
            byte = fh.read(1)
            fh.seek(offset)
            fh.write(bytes([byte[0] ^ 0xFF]))
        assert CheckpointLog(log_path(tmp_path)).replay() == [
            {"block": 0}, {"block": 1},
        ]


class TestCheckpointContext:
    def test_sketch_payload_roundtrip(self, tmp_path):
        keys = [np.array([1, 5, 9], dtype=np.uint64),
                np.array([2, 4], dtype=np.uint64)]
        with CheckpointContext(str(tmp_path)) as ctx:
            assert ctx.sketch_result(0) is None
            ctx.save_sketch(0, keys)
        with CheckpointContext(str(tmp_path)) as ctx:
            assert ctx.completed_units("sketch") == [0]
            loaded = ctx.sketch_result(0)
        assert all(np.array_equal(a, b) for a, b in zip(loaded, keys))

    def test_mapping_payload_roundtrip(self, tmp_path):
        result = MappingResult(
            segment_names=["r0/prefix", "r0/suffix"],
            subject=np.array([2, -1], dtype=np.int64),
            hit_count=np.array([5, 0], dtype=np.int64),
            infos=[SegmentInfo(0, PREFIX), SegmentInfo(0, SUFFIX)],
        )
        with CheckpointContext(str(tmp_path)) as ctx:
            ctx.save_mapping(3, result)
        with CheckpointContext(str(tmp_path)) as ctx:
            loaded = ctx.mapping_result(3)
        assert loaded.segment_names == result.segment_names
        assert np.array_equal(loaded.subject, result.subject)
        assert np.array_equal(loaded.hit_count, result.hit_count)
        assert loaded.infos == result.infos

    def test_corrupt_unit_payload_reads_as_not_done(self, tmp_path):
        with CheckpointContext(str(tmp_path)) as ctx:
            ctx.save_sketch(0, [np.arange(8, dtype=np.uint64)])
        unit = tmp_path / "units" / "sketch_0000.npz"
        raw = bytearray(unit.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        unit.write_bytes(bytes(raw))
        with CheckpointContext(str(tmp_path)) as ctx:
            # the log says "done" but the payload fails its CRC: recompute
            assert ctx.completed_units("sketch") == [0]
            assert ctx.sketch_result(0) is None

    def test_missing_unit_payload_reads_as_not_done(self, tmp_path):
        with CheckpointContext(str(tmp_path)) as ctx:
            ctx.save_sketch(1, [np.arange(4, dtype=np.uint64)])
        os.unlink(tmp_path / "units" / "sketch_0001.npz")
        with CheckpointContext(str(tmp_path)) as ctx:
            assert ctx.sketch_result(1) is None


class TestRunManifest:
    def manifest(self, **overrides) -> RunManifest:
        base = dict(
            command="map",
            pipeline={"mapper": "jem", "jem_k": 16},
            units={"mode": "simulated", "map_blocks": 4},
            inputs={"reads": {"n": 20, "crc32": 123}},
        )
        base.update(overrides)
        return RunManifest(**base)

    def test_identical_manifest_resumes(self, tmp_path):
        with CheckpointContext(str(tmp_path)) as ctx:
            ctx.ensure_manifest(self.manifest())
        with CheckpointContext(str(tmp_path)) as ctx:
            ctx.ensure_manifest(self.manifest())  # no raise

    @pytest.mark.parametrize(
        "overrides, expected",
        [
            ({"command": "index"}, "command"),
            ({"pipeline": {"mapper": "jem", "jem_k": 12}}, "pipeline.jem_k"),
            ({"units": {"mode": "simulated", "map_blocks": 8}}, "units.map_blocks"),
            ({"inputs": {"reads": {"n": 21, "crc32": 9}}}, "inputs.reads"),
        ],
    )
    def test_mismatched_manifest_refused(self, tmp_path, overrides, expected):
        with CheckpointContext(str(tmp_path)) as ctx:
            ctx.ensure_manifest(self.manifest())
        with CheckpointContext(str(tmp_path)) as ctx:
            with pytest.raises(CheckpointError, match=expected):
                ctx.ensure_manifest(self.manifest(**overrides))

    def test_unreadable_manifest_is_typed(self, tmp_path):
        with CheckpointContext(str(tmp_path)) as ctx:
            ctx.ensure_manifest(self.manifest())
        (tmp_path / "manifest.json").write_text("{not json")
        with CheckpointContext(str(tmp_path)) as ctx:
            with pytest.raises(CheckpointError, match="unreadable"):
                ctx.load_manifest()
