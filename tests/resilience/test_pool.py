"""ResilientWorkerPool: rebuild after worker loss, segment republish, sweep.

Also the SIGKILL-leak story for shared memory: a hard-killed process
cannot run its ``atexit`` unlink, so its segment survives as an orphan —
and the startup/watchdog sweep reclaims it.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import time

import pytest

from repro import JEMConfig, JEMMapper
from repro.errors import ReproError
from repro.parallel.shm import (
    orphan_segment_names,
    segment_exists,
    share_store,
    sweep_orphan_segments,
)
from repro.resilience import ResilientWorkerPool
from repro.resilience.pool import probe_worker

CONFIG = JEMConfig(k=12, w=20, ell=500, trials=4, seed=7)


@pytest.fixture
def store(tiling_contigs):
    mapper = JEMMapper(CONFIG)
    mapper.index(tiling_contigs)
    return mapper.table


def wait_until(predicate, timeout=10.0, interval=0.02) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestResilientWorkerPool:
    def test_probe_sees_shared_store(self, store):
        with ResilientWorkerPool(store, "columnar", processes=2) as pool:
            probes = pool.run(probe_worker, [0, 1, 2, 3], timeout=30)
            assert {pid for pid, _ in probes} <= set(pool.worker_pids)
            assert all(n == store.n_subjects for _, n in probes)

    def test_run_before_start_is_typed(self, store):
        pool = ResilientWorkerPool(store, "columnar", processes=1)
        with pytest.raises(ReproError, match="not started"):
            pool.run(probe_worker, [0])

    def test_sigkilled_workers_trigger_rebuild(self, store):
        with ResilientWorkerPool(store, "columnar", processes=2) as pool:
            assert pool.healthy()
            old_pids = pool.worker_pids
            hit = pool.kill_workers(signal.SIGKILL)
            assert hit == old_pids
            assert wait_until(lambda: not pool.healthy())
            assert pool.ensure() is True
            assert pool.rebuilds == 1
            assert pool.healthy()
            probes = pool.run(probe_worker, [0, 1], timeout=30)
            assert all(n == store.n_subjects for _, n in probes)

    def test_vanished_segment_republished(self, store):
        with ResilientWorkerPool(store, "columnar", processes=1) as pool:
            name = pool.segment_name
            # an over-eager operator unlinks the segment out from under us
            from repro.parallel import shm as shm_mod

            seg, _ = shm_mod._created[name]
            seg.unlink()
            assert not pool.healthy()
            assert pool.ensure() is True
            assert pool.segments_republished == 1
            assert pool.segment_name != name
            assert pool.healthy()
            probes = pool.run(probe_worker, [0], timeout=30)
            assert probes[0][1] == store.n_subjects

    def test_ensure_on_healthy_pool_is_a_noop(self, store):
        with ResilientWorkerPool(store, "columnar", processes=1) as pool:
            assert pool.ensure() is False
            assert pool.rebuilds == 0


def _publish_and_sleep(conn) -> None:
    """Child body: publish a store into shm, report the name, hang."""
    from repro.seq.records import SequenceSet

    mapper = JEMMapper(CONFIG)
    mapper.index(SequenceSet.from_strings([("c0", "ACGTACGTACGT" * 50)]))
    shared = share_store(mapper.table, "columnar")
    conn.send(shared.ref.name)
    conn.close()
    time.sleep(120)  # killed long before this returns


class TestOrphanSweep:
    def test_sigkill_leaks_segment_and_sweep_reclaims_it(self):
        ctx = mp.get_context("fork")
        parent_conn, child_conn = ctx.Pipe()
        child = ctx.Process(target=_publish_and_sleep, args=(child_conn,))
        child.start()
        try:
            assert parent_conn.poll(30), "child never published"
            name = parent_conn.recv()
            assert segment_exists(name)
            os.kill(child.pid, signal.SIGKILL)
            child.join(30)
            # SIGKILL skipped the atexit unlink: the segment is leaked
            assert segment_exists(name)
            assert name in orphan_segment_names()
            removed = sweep_orphan_segments()
            assert name in removed
            assert not segment_exists(name)
        finally:
            if child.is_alive():  # pragma: no cover - cleanup on failure
                child.kill()
                child.join(10)

    def test_sweep_spares_live_owners(self, store):
        shared = share_store(store, "columnar")
        try:
            assert shared.ref.name not in orphan_segment_names()
            assert shared.ref.name not in sweep_orphan_segments()
            assert segment_exists(shared.ref.name)
        finally:
            from repro.parallel.shm import release

            release(shared.ref.name)
