"""Serve-chaos harness: fleet torture mid-load with a byte-parity gate.

One cycle = reference stream (undisturbed single service) → storm (kills
and wedges fired against a supervised scatter fleet while the same reads
stream through it) → recovery (fleet healthy again, scatter throughput
restored, zero shm leaks).  The report's ``ok`` is exactly what the CI
``chaos-serve`` job gates on.
"""

from __future__ import annotations

import pytest

from repro import JEMConfig
from repro.errors import ChaosError
from repro.resilience import (
    ServeChaosEvent,
    ServeChaosPlan,
    run_serve_chaos,
)

CONFIG = JEMConfig(k=12, w=20, ell=500, trials=6, seed=99)


class TestServeChaosPlan:
    def test_seeded_plans_are_replayable(self):
        a = ServeChaosPlan.seeded(7, n_replicas=3, total_reads=20)
        b = ServeChaosPlan.seeded(7, n_replicas=3, total_reads=20)
        assert a == b
        assert 1 <= len(a.events) <= 2
        for event in a.events:
            assert event.kind in ("kill", "wedge")
            assert 0 <= event.replica < 3
            assert 1 <= event.after_mapped < 20
        # triggers are sorted so the injector fires them in stream order
        marks = [e.after_mapped for e in a.events]
        assert marks == sorted(marks)

    def test_distinct_seeds_draw_distinct_plans(self):
        plans = {ServeChaosPlan.seeded(s, n_replicas=3, total_reads=20)
                 for s in range(8)}
        assert len(plans) > 1

    def test_bad_specs_are_rejected(self):
        with pytest.raises(ChaosError, match="unknown serve chaos kind"):
            ServeChaosEvent(kind="meteor", replica=0, after_mapped=1)
        with pytest.raises(ChaosError, match="after_mapped"):
            ServeChaosEvent(kind="kill", replica=0, after_mapped=0)
        with pytest.raises(ChaosError, match="total_reads"):
            ServeChaosPlan.seeded(1, n_replicas=3, total_reads=1)


class TestServeChaosCycle:
    def test_kill_storm_is_byte_identical_and_recovers(
        self, tiling_contigs, clean_reads
    ):
        plan = ServeChaosPlan(
            seed=0,
            events=(
                ServeChaosEvent(kind="kill", replica=1, after_mapped=3),
                ServeChaosEvent(kind="wedge", replica=2, after_mapped=8),
            ),
        )
        report = run_serve_chaos(
            tiling_contigs, clean_reads, CONFIG, plan=plan, n_replicas=3
        )
        assert report.parity, report.story()
        assert report.dropped == 0
        assert report.responses == len(clean_reads)
        assert len(report.events_fired) == 2
        assert report.respawns >= 1  # the supervisor repaired the corpse
        assert report.recovered and report.rescatter_ok
        assert report.leaked_segments == []
        assert report.ok

    def test_seeded_cycle_passes_the_gate(self, tiling_contigs, clean_reads):
        plan = ServeChaosPlan.seeded(
            1, n_replicas=3, total_reads=len(clean_reads)
        )
        report = run_serve_chaos(
            tiling_contigs, clean_reads, CONFIG, plan=plan, n_replicas=3
        )
        assert report.ok, report.story()
