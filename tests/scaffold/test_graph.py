import pytest

from repro.errors import MappingError
from repro.scaffold import ContigLink, ScaffoldGraph


def link(a, a_end, b, b_end, support=5, gap=100):
    return ContigLink(a=a, b=b, a_end=a_end, b_end=b_end, support=support, gap=gap)


def test_simple_chain():
    # 0(tail) - (head)1(tail) - (head)2 : a forward chain 0,1,2
    g = ScaffoldGraph(3)
    accepted = g.add_links([link(0, "tail", 1, "head"), link(1, "tail", 2, "head")])
    assert accepted == 2
    paths = g.paths()
    assert len(paths) == 1
    path = paths[0]
    assert path.order in ([0, 1, 2], [2, 1, 0])
    if path.order == [0, 1, 2]:
        assert path.orientations == [1, 1, 1]
    else:
        assert path.orientations == [-1, -1, -1]
    assert len(path.gaps) == 2


def test_orientation_flip():
    # 0(tail) joined to 1(tail): contig 1 must appear reversed after 0
    g = ScaffoldGraph(2)
    g.add_links([link(0, "tail", 1, "tail")])
    (path,) = g.paths()
    flipped = dict(zip(path.order, path.orientations))
    assert flipped[0] * flipped[1] == -1  # opposite orientations


def test_end_occupancy_prevents_branching():
    g = ScaffoldGraph(3)
    accepted = g.add_links(
        [
            link(0, "tail", 1, "head", support=9),
            link(0, "tail", 2, "head", support=1),  # same end of 0 -> rejected
        ]
    )
    assert accepted == 1
    assert (0, "tail") in g.joins
    assert g.joins[(0, "tail")][0] == 1  # the stronger link won


def test_cycle_prevented():
    g = ScaffoldGraph(3)
    accepted = g.add_links(
        [
            link(0, "tail", 1, "head"),
            link(1, "tail", 2, "head"),
            link(2, "tail", 0, "head"),  # would close the cycle
        ]
    )
    assert accepted == 2
    (path,) = g.paths()
    assert len(path) == 3


def test_singletons():
    g = ScaffoldGraph(3)
    g.add_links([link(0, "tail", 1, "head")])
    assert len(g.paths()) == 1
    with_singletons = g.paths(include_singletons=True)
    assert len(with_singletons) == 2
    assert any(len(p) == 1 and p.order == [2] for p in with_singletons)


def test_two_independent_chains():
    g = ScaffoldGraph(4)
    g.add_links([link(0, "tail", 1, "head"), link(2, "tail", 3, "head")])
    paths = g.paths()
    assert len(paths) == 2
    assert {frozenset(p.order) for p in paths} == {frozenset({0, 1}), frozenset({2, 3})}


def test_unknown_contig_rejected():
    g = ScaffoldGraph(2)
    with pytest.raises(MappingError):
        g.add_links([link(0, "tail", 5, "head")])


def test_empty_graph_rejected():
    with pytest.raises(MappingError):
        ScaffoldGraph(0)
