"""Property tests: scaffold-graph invariants under random link sets."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scaffold import ContigLink, ScaffoldGraph

ends = st.sampled_from(["head", "tail"])


@st.composite
def random_links(draw, max_contigs=10, max_links=15):
    n = draw(st.integers(min_value=2, max_value=max_contigs))
    n_links = draw(st.integers(min_value=0, max_value=max_links))
    links = []
    for _ in range(n_links):
        a = draw(st.integers(min_value=0, max_value=n - 1))
        b = draw(st.integers(min_value=0, max_value=n - 1))
        if a == b:
            continue
        links.append(
            ContigLink(
                a=min(a, b), b=max(a, b),
                a_end=draw(ends), b_end=draw(ends),
                support=draw(st.integers(min_value=1, max_value=20)),
                gap=draw(st.integers(min_value=-50, max_value=500)),
            )
        )
    return n, links


@settings(max_examples=80, deadline=None)
@given(random_links())
def test_paths_partition_contigs(data):
    """Every contig appears in exactly one path (with singletons included)."""
    n, links = data
    graph = ScaffoldGraph(n)
    graph.add_links(links)
    paths = graph.paths(include_singletons=True)
    seen = [c for p in paths for c in p.order]
    assert sorted(seen) == list(range(n))


@settings(max_examples=80, deadline=None)
@given(random_links())
def test_path_shape_invariants(data):
    n, links = data
    graph = ScaffoldGraph(n)
    accepted = graph.add_links(links)
    assert accepted <= len(links)
    for path in graph.paths(include_singletons=True):
        assert len(path.orientations) == len(path.order)
        assert len(path.gaps) == max(len(path.order) - 1, 0)
        assert all(o in (1, -1) for o in path.orientations)
        assert len(set(path.order)) == len(path.order)  # no repeats


@settings(max_examples=60, deadline=None)
@given(random_links())
def test_each_end_joined_at_most_once(data):
    n, links = data
    graph = ScaffoldGraph(n)
    graph.add_links(links)
    # joins is symmetric: (a, ea) -> (b, eb) implies (b, eb) -> (a, ea)
    for (a, ea), (b, eb, _gap) in graph.joins.items():
        back = graph.joins[(b, eb)]
        assert (back[0], back[1]) == (a, ea)
