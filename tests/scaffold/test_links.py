import numpy as np
import pytest

from repro.core import JEMConfig, JEMMapper
from repro.core.mapper import MappingResult
from repro.errors import MappingError
from repro.scaffold import build_links
from repro.seq import SeqRecord, SequenceSet, SequenceSetBuilder, random_codes


@pytest.fixture
def linked_world(rng):
    """Two contigs separated by a 500 bp gap, plus reads spanning the gap."""
    genome = random_codes(12_000, rng)
    contig_a = genome[0:5_000]
    contig_b = genome[5_500:11_500]  # gap 5000..5500
    contigs = SequenceSet.from_records(
        [
            SeqRecord("A", contig_a),
            SeqRecord("B", contig_b),
        ]
    )
    builder = SequenceSetBuilder()
    for i, start in enumerate((1_000, 1_500, 2_000)):
        builder.add(f"r{i}", genome[start : start + 9_000])
    return genome, contigs, builder.build()


def _map(contigs, reads):
    cfg = JEMConfig(k=14, w=20, ell=800, trials=12, seed=9)
    mapper = JEMMapper(cfg)
    mapper.index(contigs)
    return cfg, mapper.map_reads(reads)


def test_links_found_with_orientation_and_gap(linked_world):
    genome, contigs, reads = linked_world
    cfg, mapping = _map(contigs, reads)
    links = build_links(contigs, reads, mapping, ell=cfg.ell, min_support=2, k=cfg.k)
    assert len(links) == 1
    link = links[0]
    assert (link.a, link.b) == (0, 1)
    # reads run A(tail) -> gap -> B(head)
    assert link.a_end == "tail"
    assert link.b_end == "head"
    assert link.support == 3
    # true gap is 500 bp; anchors give it within a few hundred bp
    assert -300 < link.gap < 1_500


def test_min_support_filters(linked_world):
    genome, contigs, reads = linked_world
    cfg, mapping = _map(contigs, reads)
    assert build_links(contigs, reads, mapping, ell=cfg.ell, min_support=4) == []


def test_same_contig_pairs_ignored(rng):
    contig = random_codes(8_000, rng)
    contigs = SequenceSet.from_records(
        [SeqRecord("A", contig)]
    )
    builder = SequenceSetBuilder()
    builder.add("r", contig[500:7_500])
    reads = builder.build()
    cfg, mapping = _map(contigs, reads)
    assert mapping.subject[0] == mapping.subject[1] == 0
    assert build_links(contigs, reads, mapping, ell=cfg.ell, min_support=1) == []


def test_row_count_mismatch_rejected(linked_world):
    genome, contigs, reads = linked_world
    bad = MappingResult(["x"], np.array([0]), np.array([1]))
    with pytest.raises(MappingError, match="2 segments per read"):
        build_links(contigs, reads, bad)
