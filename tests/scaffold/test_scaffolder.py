import numpy as np
import pytest

from repro.core import JEMConfig
from repro.errors import MappingError
from repro.scaffold import Scaffolder
from repro.seq import SeqRecord, SequenceSet, SequenceSetBuilder, decode, random_codes


CFG = JEMConfig(k=14, w=20, ell=800, trials=12, seed=9)


@pytest.fixture
def gapped_world(rng):
    """Genome split into 4 contigs with 400 bp unassembled gaps between them."""
    genome = random_codes(26_000, rng)
    bounds = [(0, 6_000), (6_400, 12_600), (13_000, 19_400), (19_800, 26_000)]
    contigs = SequenceSet.from_records(
        [SeqRecord(f"c{i}", genome[a:b]) for i, (a, b) in enumerate(bounds)]
    )
    builder = SequenceSetBuilder()
    rstarts = list(range(0, 16_500, 750))
    for i, start in enumerate(rstarts):
        builder.add(f"r{i}", genome[start : start + 9_500])
    return genome, contigs, builder.build()


def test_scaffolder_recovers_order(gapped_world):
    genome, contigs, reads = gapped_world
    result = Scaffolder(CFG, min_support=1).scaffold(contigs, reads)
    assert result.n_links_used >= 2
    assert result.n_scaffolds >= 1
    longest = max(result.paths, key=len)
    order = longest.order
    # order must be a contiguous run of 0,1,2,3 in either direction
    assert order == sorted(order) or order == sorted(order, reverse=True)
    assert len(order) >= 3


def test_scaffold_sequences_contain_gaps(gapped_world):
    genome, contigs, reads = gapped_world
    result = Scaffolder(CFG, min_support=1).scaffold(contigs, reads)
    seq = result.sequences[0].sequence
    assert "n" in seq  # gap fill
    # scaffold length ~ sum of member contigs + gaps
    path = result.paths[0]
    member_bases = sum(int(contigs.lengths[c]) for c in path.order)
    assert len(seq) >= member_bases


def test_span_exceeds_longest_contig(gapped_world):
    genome, contigs, reads = gapped_world
    result = Scaffolder(CFG, min_support=1).scaffold(contigs, reads)
    assert result.span(contigs.lengths) > int(contigs.lengths.max())


def test_reuse_existing_mapping(gapped_world):
    genome, contigs, reads = gapped_world
    from repro.core import JEMMapper

    mapper = JEMMapper(CFG)
    mapper.index(contigs)
    mapping = mapper.map_reads(reads)
    result = Scaffolder(CFG, min_support=1).scaffold(contigs, reads, mapping=mapping)
    assert result.mapping is mapping
    assert result.n_scaffolds >= 1


def test_empty_contigs_rejected(gapped_world):
    genome, contigs, reads = gapped_world
    with pytest.raises(MappingError):
        Scaffolder(CFG).scaffold(SequenceSet.empty(), reads)


def test_gap_clipping(gapped_world):
    import re

    genome, contigs, reads = gapped_world
    result = Scaffolder(CFG, min_support=1, min_gap=50, max_gap=120).scaffold(
        contigs, reads
    )
    for rec in result.sequences:
        for match in re.finditer(r"n+", rec.sequence):
            assert 50 <= len(match.group()) <= 120
