import numpy as np
import pytest

from repro.seq.alphabet import (
    ALPHABET,
    BYTE_TO_CODE,
    CODE_TO_BYTE,
    COMPLEMENT_CODE,
    INVALID_CODE,
    complement_codes,
)


def test_alphabet_order_is_lexicographic():
    assert ALPHABET == "acgt"
    assert sorted(ALPHABET) == list(ALPHABET)


def test_byte_to_code_maps_both_cases():
    for i, base in enumerate("acgt"):
        assert BYTE_TO_CODE[ord(base)] == i
        assert BYTE_TO_CODE[ord(base.upper())] == i


def test_byte_to_code_invalid_bytes():
    for ch in "nNxX*- 0":
        assert BYTE_TO_CODE[ord(ch)] == INVALID_CODE


def test_code_to_byte_round_trip():
    for i, base in enumerate("acgt"):
        assert chr(CODE_TO_BYTE[i]) == base
    assert chr(CODE_TO_BYTE[INVALID_CODE]) == "n"


def test_complement_is_involution():
    codes = np.array([0, 1, 2, 3, 4], dtype=np.uint8)
    assert np.array_equal(complement_codes(complement_codes(codes)), codes)


def test_complement_pairs():
    # a<->t, c<->g
    assert COMPLEMENT_CODE[0] == 3
    assert COMPLEMENT_CODE[3] == 0
    assert COMPLEMENT_CODE[1] == 2
    assert COMPLEMENT_CODE[2] == 1
    assert COMPLEMENT_CODE[INVALID_CODE] == INVALID_CODE
