import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SequenceError
from repro.seq import (
    count_invalid,
    decode,
    encode,
    random_codes,
    reverse_complement,
    reverse_complement_str,
)
from repro.seq.alphabet import INVALID_CODE

dna = st.text(alphabet="acgt", min_size=0, max_size=200)


def test_encode_simple():
    assert np.array_equal(encode("acgt"), np.array([0, 1, 2, 3], dtype=np.uint8))


def test_encode_case_insensitive():
    assert np.array_equal(encode("AcGt"), encode("acgt"))


def test_encode_invalid_maps_to_sentinel():
    codes = encode("acNgt")
    assert codes[2] == INVALID_CODE
    assert count_invalid(codes) == 1


def test_encode_validate_raises():
    with pytest.raises(SequenceError, match="position 2"):
        encode("acNgt", validate=True)


def test_decode_rejects_out_of_range():
    with pytest.raises(SequenceError):
        decode(np.array([0, 9], dtype=np.uint8))


def test_reverse_complement_known():
    assert reverse_complement_str("acgt") == "acgt"  # palindrome
    assert reverse_complement_str("aacc") == "ggtt"
    assert reverse_complement_str("gattaca") == "tgtaatc"


@given(dna)
def test_round_trip(s):
    assert decode(encode(s)) == s


@given(dna)
def test_revcomp_involution(s):
    codes = encode(s)
    assert np.array_equal(reverse_complement(reverse_complement(codes)), codes)


@given(dna.filter(lambda s: len(s) > 0))
def test_revcomp_reverses_order(s):
    rc = reverse_complement_str(s)
    assert len(rc) == len(s)
    # First base of rc is the complement of the last base of s.
    comp = {"a": "t", "t": "a", "c": "g", "g": "c"}
    assert rc[0] == comp[s[-1]]


def test_random_codes_range(rng):
    codes = random_codes(1000, rng)
    assert codes.dtype == np.uint8
    assert codes.min() >= 0 and codes.max() <= 3


def test_random_codes_negative_length(rng):
    with pytest.raises(SequenceError):
        random_codes(-1, rng)
