"""Failure injection for the I/O layer: malformed and unusual files."""

import gzip

import pytest

from repro.errors import ParseError
from repro.seq import SequenceSet, iter_fasta, iter_fastq, read_fasta, write_fasta


def test_crlf_line_endings(tmp_path):
    path = tmp_path / "crlf.fasta"
    path.write_bytes(b">r1\r\nacgt\r\nacgt\r\n")
    records = list(iter_fasta(path))
    assert records[0].sequence == "acgtacgt"


def test_blank_lines_between_records(tmp_path):
    path = tmp_path / "blank.fasta"
    path.write_text(">a\nacgt\n\n\n>b\n\ngg\n")
    records = list(iter_fasta(path))
    assert [r.name for r in records] == ["a", "b"]
    assert records[1].sequence == "gg"


def test_header_only_record(tmp_path):
    path = tmp_path / "empty_seq.fasta"
    path.write_text(">a\n>b\nacgt\n")
    records = list(iter_fasta(path))
    assert records[0].name == "a" and len(records[0]) == 0
    assert records[1].sequence == "acgt"


def test_lowercase_and_uppercase_mixed(tmp_path):
    path = tmp_path / "case.fasta"
    path.write_text(">a\nAcGtNn\n")
    rec = next(iter_fasta(path))
    assert rec.sequence == "acgtnn"


def test_truncated_gzip(tmp_path):
    path = tmp_path / "x.fasta.gz"
    with gzip.open(path, "wt") as fh:
        fh.write(">a\n" + "acgt" * 100 + "\n")
    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) // 2])
    with pytest.raises(Exception):  # EOFError/OSError from gzip
        read_fasta(path)


def test_fastq_truncated_record(tmp_path):
    path = tmp_path / "trunc.fastq"
    path.write_text("@r1\nacgt\n+\nIIII\n@r2\nacgt\n")
    # r2 is missing the separator + quality: the parser must raise
    with pytest.raises(ParseError):
        list(iter_fastq(path))


def test_fasta_with_windows_bom_fails_cleanly(tmp_path):
    path = tmp_path / "bom.fasta"
    path.write_bytes(b"\xef\xbb\xbf>a\nacgt\n")
    # BOM bytes are not valid ASCII; the decode error should surface,
    # not silently corrupt the record
    with pytest.raises(Exception):
        list(iter_fasta(path))


def test_write_empty_set(tmp_path):
    path = tmp_path / "empty.fasta"
    assert write_fasta(path, SequenceSet.empty()) == 0
    assert path.read_text() == ""
    assert len(read_fasta(path)) == 0


def test_very_long_single_line(tmp_path):
    path = tmp_path / "long.fasta"
    path.write_text(">a\n" + "acgt" * 100_000 + "\n")
    loaded = read_fasta(path)
    assert loaded.total_bases == 400_000
