import gzip

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParseError
from repro.seq import SequenceSet, iter_fasta, read_fasta, write_fasta


def test_round_trip(tmp_path):
    path = tmp_path / "x.fasta"
    original = SequenceSet.from_strings([("s1", "acgtacgtacgt"), ("s2", "ttag")])
    write_fasta(path, original)
    loaded = read_fasta(path)
    assert loaded.names == ["s1", "s2"]
    assert loaded[0].sequence == "acgtacgtacgt"
    assert loaded[1].sequence == "ttag"


def test_round_trip_gzip(tmp_path):
    path = tmp_path / "x.fasta.gz"
    original = SequenceSet.from_strings([("s1", "acgt" * 50)])
    write_fasta(path, original)
    with gzip.open(path, "rt") as fh:
        assert fh.readline().startswith(">s1")
    assert read_fasta(path)[0].sequence == "acgt" * 50


def test_multiline_records(tmp_path):
    path = tmp_path / "m.fasta"
    path.write_text(">r desc here\nacgt\nacgt\n\n>r2\ngg\n")
    records = list(iter_fasta(path))
    assert records[0].name == "r"
    assert records[0].meta["description"] == "desc here"
    assert records[0].sequence == "acgtacgt"
    assert records[1].sequence == "gg"


def test_wrap_width(tmp_path):
    path = tmp_path / "w.fasta"
    write_fasta(path, SequenceSet.from_strings([("s", "a" * 25)]), width=10)
    lines = path.read_text().splitlines()
    assert lines[1:] == ["a" * 10, "a" * 10, "a" * 5]


def test_data_before_header(tmp_path):
    path = tmp_path / "bad.fasta"
    path.write_text("acgt\n>r\nacgt\n")
    with pytest.raises(ParseError, match="before any"):
        list(iter_fasta(path))


def test_empty_header(tmp_path):
    path = tmp_path / "bad2.fasta"
    path.write_text(">\nacgt\n")
    with pytest.raises(ParseError, match="empty FASTA header"):
        list(iter_fasta(path))


def test_empty_file(tmp_path):
    path = tmp_path / "empty.fasta"
    path.write_text("")
    assert len(read_fasta(path)) == 0


names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-.",
    min_size=1,
    max_size=20,
)
seqs = st.text(alphabet="acgt", min_size=1, max_size=300)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(names, seqs), min_size=1, max_size=10))
def test_round_trip_property(tmp_path_factory, pairs):
    path = tmp_path_factory.mktemp("fa") / "p.fasta"
    original = SequenceSet.from_strings(pairs)
    write_fasta(path, original, width=7)
    loaded = read_fasta(path)
    assert loaded.names == original.names
    for i in range(len(original)):
        assert loaded[i].sequence == original[i].sequence
