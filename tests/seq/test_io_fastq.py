import numpy as np
import pytest

from repro.errors import ParseError
from repro.seq import SeqRecord, SequenceSet, encode, iter_fastq, read_fastq, write_fastq


def test_round_trip(tmp_path):
    path = tmp_path / "x.fastq"
    rec = SeqRecord("r1", encode("acgt"), quality=np.array([10, 20, 30, 40], dtype=np.uint8))
    write_fastq(path, [rec])
    loaded = list(iter_fastq(path))
    assert loaded[0].name == "r1"
    assert loaded[0].sequence == "acgt"
    assert np.array_equal(loaded[0].quality, [10, 20, 30, 40])


def test_default_quality(tmp_path):
    path = tmp_path / "d.fastq"
    write_fastq(path, SequenceSet.from_strings([("r", "acg")]), default_quality=35)
    rec = next(iter_fastq(path))
    assert np.array_equal(rec.quality, [35, 35, 35])


def test_read_fastq_set(tmp_path):
    path = tmp_path / "s.fastq"
    write_fastq(path, SequenceSet.from_strings([("a", "acgt"), ("b", "gg")]))
    loaded = read_fastq(path)
    assert loaded.names == ["a", "b"]
    assert loaded.total_bases == 6


def test_bad_header(tmp_path):
    path = tmp_path / "bad.fastq"
    path.write_text("r1\nacgt\n+\nIIII\n")
    with pytest.raises(ParseError, match="expected '@'"):
        list(iter_fastq(path))


def test_bad_separator(tmp_path):
    path = tmp_path / "bad2.fastq"
    path.write_text("@r1\nacgt\n-\nIIII\n")
    with pytest.raises(ParseError, match="expected '\\+'"):
        list(iter_fastq(path))


def test_quality_length_mismatch(tmp_path):
    path = tmp_path / "bad3.fastq"
    path.write_text("@r1\nacgt\n+\nII\n")
    with pytest.raises(ParseError, match="quality length"):
        list(iter_fastq(path))


def test_description_preserved(tmp_path):
    path = tmp_path / "desc.fastq"
    path.write_text("@r1 some description\nacgt\n+\nIIII\n")
    rec = next(iter_fastq(path))
    assert rec.meta["description"] == "some description"
