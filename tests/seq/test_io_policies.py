"""The ``on_error="skip"`` parser policy: malformed records become counted
warnings instead of aborting the whole file."""

import pytest

from repro.errors import ParseError
from repro.seq import ParseReport, iter_fasta, iter_fastq, read_fasta, read_fastq


def test_on_error_validated(tmp_path):
    path = tmp_path / "x.fasta"
    path.write_text(">a\nacgt\n")
    with pytest.raises(ValueError):
        list(iter_fasta(path, on_error="ignore"))


def test_fasta_skip_empty_header(tmp_path):
    path = tmp_path / "bad.fasta"
    path.write_text(">a\nacgt\n>\ntttt\ngggg\n>b\ncc\n")
    report = ParseReport()
    with pytest.warns(UserWarning, match="skipping"):
        records = list(iter_fasta(path, on_error="skip", report=report))
    assert [r.name for r in records] == ["a", "b"]
    assert records[0].sequence == "acgt" and records[1].sequence == "cc"
    assert report.skipped == 1
    assert report.errors[0].line == 3  # ParseError keeps path/line context
    assert str(path) in str(report.errors[0])


def test_fasta_skip_orphan_sequence_data(tmp_path):
    path = tmp_path / "orphan.fasta"
    path.write_text("acgtacgt\nmore\n>a\ngg\n")
    report = ParseReport()
    with pytest.warns(UserWarning):
        loaded = read_fasta(path, on_error="skip", report=report)
    assert list(loaded.names) == ["a"]
    assert report.skipped == 1  # one incident, follow-up lines dropped silently


def test_fasta_raise_is_default(tmp_path):
    path = tmp_path / "bad.fasta"
    path.write_text(">\nacgt\n")
    with pytest.raises(ParseError):
        list(iter_fasta(path))


def test_fastq_skip_length_mismatch(tmp_path):
    path = tmp_path / "bad.fastq"
    path.write_text("@r1\nacgt\n+\nIIII\n@r2\nacgt\n+\nII\n@r3\ntt\n+\nII\n")
    report = ParseReport()
    with pytest.warns(UserWarning):
        records = list(iter_fastq(path, on_error="skip", report=report))
    assert [r.name for r in records] == ["r1", "r3"]
    assert report.skipped == 1
    assert "quality length" in str(report.errors[0])


def test_fastq_skip_truncated_final_record(tmp_path):
    path = tmp_path / "trunc.fastq"
    path.write_text("@r1\nacgt\n+\nIIII\n@r2\nacgt\n")
    report = ParseReport()
    with pytest.warns(UserWarning):
        loaded = read_fastq(path, on_error="skip", report=report)
    assert list(loaded.names) == ["r1"]
    assert report.skipped == 1


def test_fastq_skip_resyncs_on_next_header(tmp_path):
    # junk between records: the parser scans to the next '@' header
    path = tmp_path / "junk.fastq"
    path.write_text("junk line\n@r1\nacgt\n+\nIIII\n")
    report = ParseReport()
    with pytest.warns(UserWarning):
        records = list(iter_fastq(path, on_error="skip", report=report))
    assert [r.name for r in records] == ["r1"]
    assert report.skipped == 1


def test_fastq_raise_is_default(tmp_path):
    path = tmp_path / "bad.fastq"
    path.write_text("@r1\nacgt\n+\nII\n")
    with pytest.raises(ParseError):
        list(iter_fastq(path))
