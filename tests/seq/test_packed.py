import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SequenceError
from repro.seq import encode
from repro.seq.packed import pack_codes, packed_nbytes, unpack_codes

dna_n = st.text(alphabet="acgtn", min_size=0, max_size=300)


def test_packed_nbytes():
    assert packed_nbytes(0) == 0
    assert packed_nbytes(1) == 1
    assert packed_nbytes(4) == 1
    assert packed_nbytes(5) == 2


def test_known_packing():
    packed, invalid = pack_codes(encode("acgt"))
    # a=0,c=1,g=2,t=3 little-endian 2-bit: 0 | 1<<2 | 2<<4 | 3<<6 = 0b11100100
    assert packed.tolist() == [0b11100100]
    assert invalid.size == 0


def test_compression_ratio():
    codes = encode("acgt" * 1000)
    packed, _ = pack_codes(codes)
    assert packed.nbytes == codes.nbytes // 4


@given(dna_n)
def test_round_trip(s):
    codes = encode(s)
    packed, invalid = pack_codes(codes)
    restored = unpack_codes(packed, codes.size, invalid)
    assert np.array_equal(restored, codes)


def test_invalid_positions_restored():
    codes = encode("acnngt")
    packed, invalid = pack_codes(codes)
    assert invalid.tolist() == [2, 3]
    assert np.array_equal(unpack_codes(packed, 6, invalid), codes)


def test_size_mismatch_rejected():
    packed, _ = pack_codes(encode("acgt"))
    with pytest.raises(SequenceError):
        unpack_codes(packed, 9)


def test_out_of_range_codes_rejected():
    with pytest.raises(SequenceError):
        pack_codes(np.array([7], dtype=np.uint8))


def test_dataset_cache_uses_packing(tmp_path):
    from repro.eval import load_or_generate

    a = load_or_generate("e_coli", scale=1 / 5000, seed=9, cache_dir=tmp_path)
    files = list(tmp_path.glob("*.npz"))
    assert len(files) == 1
    with np.load(files[0]) as data:
        assert "genome_packed" in data
        assert "reads_packed" in data
    b = load_or_generate("e_coli", scale=1 / 5000, seed=9, cache_dir=tmp_path)
    assert np.array_equal(a.genome, b.genome)
    assert np.array_equal(a.reads.buffer, b.reads.buffer)
    assert np.array_equal(a.contigs.buffer, b.contigs.buffer)
