import numpy as np
import pytest

from repro.errors import SequenceError
from repro.seq import SeqRecord, SequenceSet, SequenceSetBuilder, encode


def make_set():
    return SequenceSet.from_strings(
        [("a", "acgtacgt"), ("b", "ttttt"), ("c", "g")]
    )


def test_from_strings_lengths():
    s = make_set()
    assert len(s) == 3
    assert list(s.lengths) == [8, 5, 1]
    assert s.total_bases == 14


def test_getitem_round_trip():
    s = make_set()
    assert s[0].sequence == "acgtacgt"
    assert s[1].name == "b"
    assert s[-1].sequence == "g"


def test_getitem_out_of_range():
    with pytest.raises(IndexError):
        make_set()[3]


def test_codes_of_is_view():
    s = make_set()
    view = s.codes_of(0)
    assert view.base is s.buffer or view.base is s.buffer.base


def test_iteration_preserves_order():
    s = make_set()
    assert [r.name for r in s] == ["a", "b", "c"]


def test_subset():
    s = make_set()
    sub = s.subset([2, 0])
    assert [r.name for r in sub] == ["c", "a"]
    assert sub[1].sequence == "acgtacgt"


def test_slice_zero_copy():
    s = make_set()
    sl = s.slice(1, 3)
    assert [r.name for r in sl] == ["b", "c"]
    assert sl.total_bases == 6
    assert sl[0].sequence == "ttttt"


def test_slice_bad_range():
    with pytest.raises(SequenceError):
        make_set().slice(2, 1)


def test_concat():
    s = make_set()
    joined = s.concat(s)
    assert len(joined) == 6
    assert joined[3].sequence == "acgtacgt"


def test_empty_set():
    s = SequenceSet.empty()
    assert len(s) == 0
    assert s.total_bases == 0


def test_builder_matches_from_records():
    builder = SequenceSetBuilder()
    builder.add_string("x", "acgt", {"tag": 1})
    builder.add_string("y", "gg")
    built = builder.build()
    assert len(built) == 2
    assert built.metas[0] == {"tag": 1}
    assert built[1].sequence == "gg"


def test_builder_empty():
    assert len(SequenceSetBuilder().build()) == 0


def test_record_quality_length_mismatch():
    with pytest.raises(SequenceError):
        SeqRecord("r", encode("acgt"), quality=np.array([30, 30], dtype=np.uint8))


def test_offsets_validation():
    with pytest.raises(SequenceError):
        SequenceSet(np.zeros(4, dtype=np.uint8), np.array([0, 5]), ["a"])
