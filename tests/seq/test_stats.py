import numpy as np

from repro.seq import SequenceSet, n50, set_stats


def test_n50_simple():
    # total = 10; sorted desc: 4,3,2,1; cumsum 4,7,9,10; half=5 -> first >=5 is 7 at len 3
    assert n50(np.array([1, 2, 3, 4])) == 3


def test_n50_single():
    assert n50(np.array([42])) == 42


def test_n50_empty():
    assert n50(np.array([], dtype=np.int64)) == 0


def test_set_stats_basic():
    s = SequenceSet.from_strings([("a", "acgt" * 10), ("b", "acgt" * 5)])
    st = set_stats(s)
    assert st.count == 2
    assert st.total_bases == 60
    assert st.mean_length == 30.0
    assert st.min_length == 20
    assert st.max_length == 40


def test_set_stats_min_length_filter():
    s = SequenceSet.from_strings([("a", "a" * 600), ("b", "a" * 100)])
    st = set_stats(s, min_length=500)
    assert st.count == 1
    assert st.total_bases == 600


def test_set_stats_empty_after_filter():
    s = SequenceSet.from_strings([("a", "aa")])
    st = set_stats(s, min_length=500)
    assert st.count == 0
    assert st.n50 == 0


def test_format_row_contains_fields():
    s = SequenceSet.from_strings([("a", "a" * 1000)])
    row = set_stats(s).format_row()
    assert "n=" in row and "total=" in row and "N50" in row
