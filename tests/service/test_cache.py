"""Unit tests for the query-sketch LRU result cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.service import SketchCacheEntry, SketchLRUCache, read_content_key


def entry(n: int) -> SketchCacheEntry:
    return SketchCacheEntry(n, n + 1, n + 2, n + 3)


class TestContentKey:
    def test_same_segments_same_key(self):
        a = np.array([0, 1, 2, 3], dtype=np.uint8)
        b = np.array([3, 2, 1], dtype=np.uint8)
        assert read_content_key(a, b) == read_content_key(a.copy(), b.copy())

    def test_key_ignores_read_name_by_construction(self):
        # keys are pure content: two differently named duplicate reads collide
        a = np.array([0, 1, 2], dtype=np.uint8)
        assert read_content_key(a, a) == read_content_key(a, a)

    def test_boundary_is_not_ambiguous(self):
        # ("ab", "c") must not equal ("a", "bc")
        ab = np.array([0, 1], dtype=np.uint8)
        a = np.array([0], dtype=np.uint8)
        b = np.array([1], dtype=np.uint8)
        c = np.array([2], dtype=np.uint8)
        bc = np.array([1, 2], dtype=np.uint8)
        assert read_content_key(ab, c) != read_content_key(a, bc)


class TestSketchLRUCache:
    def test_put_get_roundtrip(self):
        cache = SketchLRUCache(4)
        cache.put(b"k1", entry(1))
        assert cache.get(b"k1") == entry(1)
        assert cache.hits == 1 and cache.misses == 0

    def test_miss_counts(self):
        cache = SketchLRUCache(4)
        assert cache.get(b"nope") is None
        assert cache.misses == 1
        assert cache.hit_ratio == 0.0

    def test_lru_eviction_order(self):
        cache = SketchLRUCache(2)
        cache.put(b"a", entry(1))
        cache.put(b"b", entry(2))
        assert cache.get(b"a") is not None  # refresh a; b is now LRU
        cache.put(b"c", entry(3))
        assert cache.get(b"b") is None  # evicted
        assert cache.get(b"a") is not None
        assert cache.get(b"c") is not None
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_update_moves_to_front(self):
        cache = SketchLRUCache(2)
        cache.put(b"a", entry(1))
        cache.put(b"b", entry(2))
        cache.put(b"a", entry(9))  # update refreshes recency
        cache.put(b"c", entry(3))
        assert cache.get(b"b") is None
        assert cache.get(b"a") == entry(9)

    def test_capacity_zero_disables(self):
        cache = SketchLRUCache(0)
        cache.put(b"a", entry(1))
        assert cache.get(b"a") is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            SketchLRUCache(-1)

    def test_clear(self):
        cache = SketchLRUCache(4)
        cache.put(b"a", entry(1))
        cache.clear()
        assert cache.get(b"a") is None
