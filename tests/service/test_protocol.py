"""NDJSON protocol tests: in-process serve_loop and the CLI client path."""

from __future__ import annotations

import io
import json

from repro import JEMConfig, JEMMapper
from repro.cli import main
from repro.service import MappingService, ServiceConfig, serve_loop

CONFIG = JEMConfig(k=12, w=20, ell=500, trials=6, seed=99)


def run_session(service, requests: list[dict]) -> list[dict]:
    """Feed request objects through one serve_loop session; return replies."""
    in_stream = io.StringIO("".join(json.dumps(r) + "\n" for r in requests))
    out_stream = io.StringIO()
    serve_loop(service, in_stream, out_stream)
    return [json.loads(line) for line in out_stream.getvalue().splitlines()]


class TestServeLoop:
    def make_service(self, tiling_contigs, **overrides):
        config = ServiceConfig(max_batch_size=8, max_wait_ms=1.0, **overrides)
        return MappingService.from_contigs(tiling_contigs, CONFIG, config)

    def test_map_responses_match_sequential_mapper(
        self, tiling_contigs, clean_reads
    ):
        mapper = JEMMapper(CONFIG)
        mapper.index(tiling_contigs)
        expected = mapper.map_reads(clean_reads)

        requests = [
            {"op": "map", "id": i, "name": clean_reads.names[i],
             "seq": clean_reads[i].sequence}
            for i in range(len(clean_reads))
        ]
        replies = run_session(self.make_service(tiling_contigs), requests)

        drained = replies[-1]
        assert drained["op"] == "drained"
        assert drained["mapped"] == len(clean_reads)
        assert drained["errors"] == 0

        maps = [r for r in replies if "results" in r]
        assert [r["id"] for r in maps] == list(range(len(clean_reads)))
        for i, reply in enumerate(maps):
            for j, result in enumerate(reply["results"]):
                row = 2 * i + j
                assert result["segment"] == expected.segment_names[row]
                assert result["hits"] == int(expected.hit_count[row])

    def test_ping_metrics_and_unknown_op(self, tiling_contigs, clean_reads):
        replies = run_session(self.make_service(tiling_contigs), [
            {"op": "ping"},
            {"op": "map", "id": 7, "name": clean_reads.names[0],
             "seq": clean_reads[0].sequence},
            {"op": "metrics"},
            {"op": "teleport"},
            {"op": "drain"},
        ])
        assert replies[0] == {"op": "pong"}
        # the metrics op flushes the pending map first
        assert replies[1]["id"] == 7 and "results" in replies[1]
        assert replies[2]["op"] == "metrics"
        assert replies[2]["metrics"]["counters"]["requests_total"] == 1
        assert "unknown op" in replies[3]["error"]
        assert replies[-1]["op"] == "drained"

    def test_bad_json_line_reports_error_and_continues(
        self, tiling_contigs, clean_reads
    ):
        service = self.make_service(tiling_contigs)
        in_stream = io.StringIO(
            "this is not json\n"
            + json.dumps({"op": "map", "id": 0,
                          "name": clean_reads.names[0],
                          "seq": clean_reads[0].sequence}) + "\n"
        )
        out_stream = io.StringIO()
        stats = serve_loop(service, in_stream, out_stream)
        replies = [json.loads(l) for l in out_stream.getvalue().splitlines()]
        assert "bad request line" in replies[0]["error"]
        assert stats.mapped == 1 and stats.drained

    def test_empty_sequence_is_an_in_band_error(self, tiling_contigs):
        replies = run_session(self.make_service(tiling_contigs), [
            {"op": "map", "id": 0, "name": "empty", "seq": ""},
        ])
        errored = [r for r in replies if r.get("id") == 0]
        assert len(errored) == 1 and "error" in errored[0]
        assert replies[-1]["op"] == "drained"
        assert replies[-1]["errors"] in (0, 1)  # submit-time reject, not a map error

    def test_eof_is_an_implicit_drain(self, tiling_contigs, clean_reads):
        service = self.make_service(tiling_contigs)
        replies = run_session(service, [
            {"op": "map", "id": 0, "name": clean_reads.names[0],
             "seq": clean_reads[0].sequence},
        ])  # no explicit drain op
        assert service.drained
        assert replies[-1]["op"] == "drained"
        assert replies[-1]["mapped"] == 1


class TestClientCLI:
    def simulate(self, tmp_path):
        data = tmp_path / "data"
        assert main([
            "simulate", "e_coli", "--scale", "0.0002", "--seed", "3",
            "--out", str(data),
        ]) == 0
        return data

    def strip(self, path):
        return [l for l in path.read_text().splitlines() if not l.startswith("#")]

    def test_client_tsv_matches_one_shot_map(self, tmp_path):
        data = self.simulate(tmp_path)
        args = ["-q", str(data / "e_coli_reads.fastq"),
                "-s", str(data / "e_coli_contigs.fasta"), "--trials", "8"]
        one_shot = tmp_path / "map.tsv"
        served = tmp_path / "client.tsv"
        metrics = tmp_path / "metrics.json"
        assert main(["map", *args, "-o", str(one_shot)]) == 0
        assert main([
            "client", *args, "-o", str(served),
            "--max-batch", "16", "--max-wait-ms", "1",
            "--metrics-out", str(metrics),
        ]) == 0
        assert self.strip(one_shot) == self.strip(served)

        snapshot = json.loads(metrics.read_text())
        assert snapshot["counters"]["requests_total"] > 0
        assert snapshot["counters"]["responses_total"] == \
            snapshot["counters"]["requests_total"]
        assert "histograms" in snapshot and "gauges" in snapshot
