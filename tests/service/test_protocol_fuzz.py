"""Protocol fuzzing: both NDJSON doors survive hostile and broken frames.

The contract under test — one malformed frame costs at most one typed
in-band error, never a session, and on the TCP door never *another
client's* session: the dispatcher task is shared, so before the broad
dispatch catch one connection's garbage ``seq`` killed every
connection's admissions.  Frames covered: truncated JSON, garbage bytes,
non-object lines, wrong-typed payload fields, oversized lines,
slow-loris half-lines, unknown ops, and admin/mutation ops interleaved
with maps.
"""

from __future__ import annotations

import asyncio
import contextlib
import io
import json
import random
import socket
import string
import threading
import time

import pytest

from repro import JEMConfig, JEMMapper
from repro.netserve import NetFrontend, ReplicaSet, make_placement
from repro.service import MappingService, ServiceConfig, serve_loop
from repro.service.protocol import ADMIN_OPS, MUTATION_OPS

CONFIG = JEMConfig(k=12, w=20, ell=500, trials=6, seed=99)

SERVICE = ServiceConfig(max_batch_size=8, max_wait_ms=1.0)

#: frames that must each draw exactly one in-band error, session intact
MALFORMED_LINES = [
    '{"op": "map", "id": 0, "name": "r"',        # truncated JSON
    '{"op": "map", "seq": "ACGT"',               # truncated mid-object
    "{'op': 'ping'}",                            # single quotes
    "not json at all",
    '"just a string"',                           # valid JSON, not an object
    "[1, 2, 3]",                                 # valid JSON, wrong shape
    "42",
    "null",
    '{"op": "teleport"}',                        # unknown op
    '{"op": "frobnicate", "id": 9}',
]

#: map requests whose payload fields have hostile types — answered
#: in-band (an error echoing the id), never a dead session/dispatcher
HOSTILE_MAPS = [
    {"op": "map", "id": 100, "seq": 5},
    {"op": "map", "id": 101, "seq": {"nested": "object"}},
    {"op": "map", "id": 102, "seq": ["A", "C", "G", "T"]},
    {"op": "map", "id": 103, "seq": None},
    {"op": "map", "id": 104, "seq": "ACGT" * 200, "deadline_ms": "soon"},
]


def fuzz_lines(seed: int, n: int = 40) -> list[str]:
    """Seeded garbage: printable noise, brace soup, truncated objects."""
    rng = random.Random(seed)
    alphabet = string.printable.replace("\n", "").replace("\r", "")
    lines = []
    for _ in range(n):
        kind = rng.randrange(3)
        if kind == 0:
            lines.append("".join(rng.choice(alphabet) for _ in range(rng.randrange(1, 80))))
        elif kind == 1:
            lines.append("{" * rng.randrange(1, 10) + "}" * rng.randrange(0, 5))
        else:
            whole = json.dumps({"op": "map", "id": rng.randrange(100),
                                "seq": "ACGT" * rng.randrange(1, 20)})
            lines.append(whole[: rng.randrange(1, len(whole) - 1)])
    return lines


@pytest.fixture
def indexed(tiling_contigs):
    mapper = JEMMapper(CONFIG, store_kind="columnar")
    mapper.index(tiling_contigs)
    return mapper


def pipe_session(tiling_contigs, request_lines: list[str]) -> list[dict]:
    """One pipe-mode serve_loop over crafted lines → parsed responses."""
    with MappingService.from_contigs(tiling_contigs, CONFIG, SERVICE) as service:
        out = io.StringIO()
        serve_loop(service, io.StringIO("\n".join(request_lines) + "\n"), out)
    return [json.loads(line) for line in out.getvalue().splitlines()]


@contextlib.contextmanager
def serving(backend, **kwargs):
    """Run a NetFrontend on a fresh loop in a thread; yield its address."""
    loop = asyncio.new_event_loop()
    frontend = NetFrontend(backend, port=0, **kwargs)
    started = threading.Event()

    def run() -> None:
        asyncio.set_event_loop(loop)

        async def main() -> None:
            await frontend.start()
            started.set()
            await frontend.serve_forever()

        loop.run_until_complete(main())
        loop.close()

    thread = threading.Thread(target=run, name="jem-fuzz-net", daemon=True)
    thread.start()
    assert started.wait(10.0), "frontend failed to start"
    try:
        yield frontend.address
    finally:
        asyncio.run_coroutine_threadsafe(frontend.stop(), loop).result(timeout=30.0)
        thread.join(timeout=30.0)


def connect_raw(address):
    """Raw socket session: (send_bytes, send_json, readline_json, close)."""
    sock = socket.create_connection(address, timeout=30.0)
    rfile = sock.makefile("rb", newline=b"\n")

    def send_bytes(payload: bytes) -> None:
        sock.sendall(payload)

    def send(obj: dict) -> None:
        sock.sendall((json.dumps(obj) + "\n").encode("utf-8"))

    def readline() -> dict:
        line = rfile.readline()
        assert line, "connection closed while a reply was expected"
        return json.loads(line)

    def close() -> None:
        rfile.close()
        sock.close()

    return send_bytes, send, readline, close


class TestPipeFuzz:
    def test_malformed_lines_each_answer_typed_and_session_survives(
        self, tiling_contigs, clean_reads
    ):
        probe = {"op": "map", "id": 999, "name": clean_reads.names[0],
                 "seq": clean_reads[0].sequence}
        replies = pipe_session(
            tiling_contigs, MALFORMED_LINES + [json.dumps(probe)]
        )
        errors = [r for r in replies if r.get("type") == "error"]
        assert len(errors) == len(MALFORMED_LINES)
        assert all("error" in r for r in errors)
        # after all that abuse, a well-formed read still maps
        mapped = [r for r in replies if r.get("id") == 999]
        assert len(mapped) == 1 and "results" in mapped[0]
        assert replies[-1]["op"] == "drained"

    def test_seeded_garbage_never_ends_the_session(self, tiling_contigs):
        for seed in (1, 2, 3):
            replies = pipe_session(
                tiling_contigs, fuzz_lines(seed) + [json.dumps({"op": "ping"})]
            )
            assert any(r.get("op") == "pong" for r in replies)
            assert replies[-1]["op"] == "drained"

    def test_hostile_map_payloads_answer_in_band(
        self, tiling_contigs, clean_reads
    ):
        probe = {"op": "map", "id": 999, "name": clean_reads.names[0],
                 "seq": clean_reads[0].sequence}
        replies = pipe_session(
            tiling_contigs,
            [json.dumps(m) for m in HOSTILE_MAPS] + [json.dumps(probe)],
        )
        for hostile in HOSTILE_MAPS:
            echo = [r for r in replies if r.get("id") == hostile["id"]]
            assert len(echo) == 1 and "error" in echo[0]
        assert any(r.get("id") == 999 and "results" in r for r in replies)

    def test_interleaved_ops_all_answered_in_order(
        self, tiling_contigs, clean_reads
    ):
        seq = clean_reads[0].sequence
        lines = [
            json.dumps({"op": "map", "id": 0, "seq": seq}),
            json.dumps({"op": "health"}),
            json.dumps({"op": "stats"}),
            json.dumps({"op": "map", "id": 1, "seq": seq}),
            json.dumps({"op": "ping"}),
            json.dumps({"op": "flush"}),
            json.dumps({"op": "map", "id": 2, "seq": seq}),
            json.dumps({"op": "metrics"}),
        ]
        replies = pipe_session(tiling_contigs, lines)
        ops = [r.get("op") for r in replies]
        for expected in ("health", "stats", "pong", "flush", "metrics", "drained"):
            assert expected in ops
        mapped = [r for r in replies if "results" in r]
        assert [r["id"] for r in mapped] == [0, 1, 2]
        # identical payloads must stay bit-identical around the chatter
        assert mapped[0]["results"] == mapped[1]["results"] == mapped[2]["results"]

    def test_restart_without_a_fleet_is_a_typed_refusal(self, tiling_contigs):
        assert "restart" in ADMIN_OPS and "restart" not in MUTATION_OPS
        replies = pipe_session(tiling_contigs, [json.dumps({"op": "restart"})])
        refusal = [r for r in replies if r.get("op") == "restart"]
        assert len(refusal) == 1
        assert "replica-set" in refusal[0]["error"]


class TestTCPFuzz:
    @pytest.fixture
    def backend(self, indexed):
        replica_set = ReplicaSet(
            indexed.table, indexed.subject_names, CONFIG,
            placement=make_placement("scatter", 2), service_config=SERVICE,
        )
        yield replica_set
        replica_set.drain()

    def test_garbage_then_valid_request_on_same_connection(
        self, backend, clean_reads
    ):
        with serving(backend) as address:
            _raw, send, readline, close = connect_raw(address)
            for line in MALFORMED_LINES:
                _raw((line + "\n").encode("utf-8", errors="replace"))
                reply = readline()
                assert reply.get("type") == "error"
            send({"op": "map", "id": 7, "name": clean_reads.names[0],
                  "seq": clean_reads[0].sequence})
            reply = readline()
            close()
        assert reply["id"] == 7 and "results" in reply

    def test_invalid_utf8_is_answered_not_fatal(self, backend):
        with serving(backend) as address:
            _raw, send, readline, close = connect_raw(address)
            _raw(b'{"op": "ping", "junk": "\xff\xfe\xfd"}\n')
            first = readline()
            send({"op": "ping"})
            second = readline()
            close()
        assert first.get("type") == "error"
        assert second == {"op": "pong"}

    def test_oversized_line_is_discarded_with_typed_error(self, backend):
        with serving(backend, max_line_bytes=1024) as address:
            _raw, send, readline, close = connect_raw(address)
            huge = json.dumps({"op": "map", "id": 0, "seq": "A" * 100_000})
            _raw((huge + "\n").encode("utf-8"))
            reply = readline()
            assert reply["type"] == "error" and "too long" in reply["error"]
            # the session resynchronised at the newline: still serving
            send({"op": "ping"})
            assert readline() == {"op": "pong"}
            close()

    def test_hostile_seq_cannot_kill_the_shared_dispatcher(
        self, backend, clean_reads
    ):
        """Regression: the dispatcher task is global, so before the broad
        dispatch catch one client's non-string ``seq`` raised out of
        ``submit`` and silently stopped admissions for every client."""
        with serving(backend) as address:
            _, send_a, read_a, close_a = connect_raw(address)
            _, send_b, read_b, close_b = connect_raw(address)
            for hostile in HOSTILE_MAPS:
                send_a(hostile)
                reply = read_a()
                assert reply.get("id") == hostile["id"] and "error" in reply
            # the other connection's admissions must still flow
            send_b({"op": "map", "id": 1, "name": clean_reads.names[0],
                    "seq": clean_reads[0].sequence})
            reply = read_b()
            close_a()
            close_b()
        assert reply["id"] == 1 and "results" in reply

    def test_slow_loris_is_cut_after_the_idle_deadline(self, backend):
        with serving(backend, idle_timeout_s=0.3) as address:
            _raw, _send, readline, close = connect_raw(address)
            t0 = time.monotonic()
            _raw(b'{"op": "pi')  # half a line, then silence
            reply = readline()
            close()
        assert reply["type"] == "error" and "idle timeout" in reply["error"]
        assert time.monotonic() - t0 < 10.0

    def test_truncated_frame_at_eof_drains_cleanly(self, backend):
        with serving(backend) as address:
            _raw, send, readline, close = connect_raw(address)
            send({"op": "ping"})
            assert readline() == {"op": "pong"}
            _raw(b'{"op": "map", "id": 3, "seq": "ACG')  # cut mid-frame
            sock_shutdown = close  # closing sends FIN: implicit drain
            sock_shutdown()
        # the server side must survive to serve the next connection
        with serving(backend) as address:
            _raw, send, readline, close = connect_raw(address)
            send({"op": "health"})
            assert readline()["ready"]
            close()

    def test_restart_op_rolls_the_fleet_and_stays_exact(
        self, backend, clean_reads
    ):
        probe = {"op": "map", "id": 0, "name": clean_reads.names[0],
                 "seq": clean_reads[0].sequence}
        with serving(backend) as address:
            _raw, send, readline, close = connect_raw(address)
            send(probe)
            before = readline()
            send({"op": "restart"})
            rolled = readline()
            send(probe)
            after = readline()
            close()
        assert rolled["op"] == "restart"
        assert rolled["restarted"] == [0, 1]
        assert backend.respawns == 2
        assert after["results"] == before["results"]
