"""Admission queue and micro-batch scheduler behaviour."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import ServiceClosedError, ServiceOverloadError
from repro.service import AdmissionQueue, MicroBatchScheduler


class TestAdmissionQueue:
    def test_fifo_and_depth(self):
        q = AdmissionQueue(8)
        assert q.put("a") == 1
        assert q.put("b") == 2
        assert q.depth == 2
        assert q.take_batch(8, 0.0) == ["a", "b"]
        assert q.depth == 0

    def test_take_batch_respects_max_size(self):
        q = AdmissionQueue(16)
        for i in range(10):
            q.put(i)
        assert q.take_batch(4, 0.0) == [0, 1, 2, 3]
        assert q.take_batch(4, 0.0) == [4, 5, 6, 7]
        assert q.take_batch(4, 0.0) == [8, 9]

    def test_backpressure_rejection_carries_retry_after(self):
        q = AdmissionQueue(2)
        q.put("a")
        q.put("b")
        with pytest.raises(ServiceOverloadError) as exc_info:
            q.put("c", retry_after=0.25)
        assert exc_info.value.retry_after == pytest.approx(0.25)
        assert q.depth == 2  # rejected item was not admitted

    def test_callable_retry_after_sees_depth_at_rejection(self):
        """The hint callable runs under the queue lock with the true depth."""
        q = AdmissionQueue(4)
        for i in range(4):
            q.put(i)
        seen = []

        def hint(depth: int) -> float:
            seen.append(depth)
            return (depth + 1) * 0.01

        with pytest.raises(ServiceOverloadError) as exc_info:
            q.put("x", retry_after=hint)
        assert seen == [4]
        assert exc_info.value.retry_after == pytest.approx(0.05)

    def test_callable_retry_after_exact_under_concurrent_producers(self):
        """Regression: with many producers racing a consumer, every
        rejection's hint must be computed from the depth at the moment of
        *that* rejection (always == capacity, since rejections only
        happen at full) — a pre-computed float would be stale whenever
        another producer or the consumer slipped in between."""
        q = AdmissionQueue(4)
        stop = threading.Event()
        depths: list[int] = []
        hints: list[float] = []

        def hint(depth: int) -> float:
            depths.append(depth)  # list.append is atomic under the GIL
            return (depth + 1) * 0.001

        def produce():
            while not stop.is_set():
                try:
                    q.put(0, retry_after=hint)
                except ServiceOverloadError as exc:
                    hints.append(exc.retry_after)
                except ServiceClosedError:  # close() racing the last put
                    return

        def consume():
            while not stop.is_set():
                q.take_batch(2, 0.0)
                time.sleep(0.0005)

        workers = [threading.Thread(target=produce) for _ in range(4)]
        workers.append(threading.Thread(target=consume))
        for w in workers:
            w.start()
        time.sleep(0.3)
        stop.set()
        q.close()  # unblock a consumer parked in take_batch
        for w in workers:
            w.join(timeout=10.0)
        assert depths, "no rejection was ever provoked"
        assert set(depths) == {4}  # the exact depth, never a stale read
        assert all(h == pytest.approx(0.005) for h in hints)

    def test_drain_vs_shutdown_race_never_hangs_or_drops(self):
        """Producers race close() mid-drain: every put() resolves — either a
        depth (and the item is drained) or a typed rejection — and the
        consumer terminates.  Nothing hangs, nothing is silently lost."""
        q = AdmissionQueue(16)
        accepted, rejected, drained = [], [], []
        lock = threading.Lock()
        start = threading.Barrier(9)

        def produce(rank):
            start.wait()
            for i in range(50):
                item = (rank, i)
                try:
                    q.put(item)
                except (ServiceClosedError, ServiceOverloadError) as exc:
                    with lock:
                        rejected.append((item, type(exc)))
                else:
                    with lock:
                        accepted.append(item)

        def consume():
            start.wait()
            while True:
                batch = q.take_batch(4, 0.005)
                drained.extend(batch)
                if not batch and q.closed:
                    return

        def shutdown():
            start.wait()
            time.sleep(0.002)  # land mid-traffic
            q.close()

        threads = [threading.Thread(target=produce, args=(r,)) for r in range(6)]
        threads += [threading.Thread(target=consume), threading.Thread(target=shutdown)]
        for t in threads:
            t.start()
        start.wait()
        for t in threads:
            t.join(timeout=30)
            assert not t.is_alive(), "a participant hung in the race"
        # every put resolved one way or the other
        assert len(accepted) + len(rejected) == 6 * 50
        # each accepted item was drained exactly once, order preserved per rank
        assert sorted(drained) == sorted(accepted)
        assert all(exc in (ServiceClosedError, ServiceOverloadError)
                   for _, exc in rejected)
        # the queue stayed closed and empty afterwards
        assert q.closed and q.depth == 0
        assert q.take_batch(4, 0.0) == []

    def test_closed_queue_rejects_new_but_drains_old(self):
        q = AdmissionQueue(4)
        q.put("a")
        q.close()
        with pytest.raises(ServiceClosedError):
            q.put("b")
        assert q.take_batch(4, 0.0) == ["a"]
        assert q.take_batch(4, 0.0) == []  # drained: the scheduler exit signal

    def test_max_wait_coalesces_late_arrivals(self):
        q = AdmissionQueue(8)
        q.put("a")

        def late_put():
            time.sleep(0.03)
            q.put("b")

        thread = threading.Thread(target=late_put)
        thread.start()
        batch = q.take_batch(8, 0.5)
        thread.join()
        assert batch == ["a", "b"]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            AdmissionQueue(0)


class TestMicroBatchScheduler:
    def drain_through(self, queue, **kwargs):
        """Run a scheduler until the queue drains; returns dispatched batches."""
        batches: list[list] = []
        scheduler = MicroBatchScheduler(
            queue, lambda b: batches.append(list(b)), **kwargs
        )
        scheduler.start()
        queue.close()
        scheduler.join(timeout=5.0)
        assert not scheduler.alive
        return batches, scheduler

    def test_coalesces_up_to_max_batch_size(self):
        q = AdmissionQueue(64)
        for i in range(10):
            q.put(i)
        batches, scheduler = self.drain_through(
            q, max_batch_size=4, max_wait_s=0.0
        )
        assert [len(b) for b in batches] == [4, 4, 2]
        assert sorted(x for b in batches for x in b) == list(range(10))
        assert scheduler.batches_dispatched == 3

    def test_max_wait_flushes_partial_batches(self):
        q = AdmissionQueue(64)
        dispatched = []
        first_batch = threading.Event()

        def dispatch(batch):
            dispatched.append(list(batch))
            first_batch.set()

        scheduler = MicroBatchScheduler(
            q, dispatch, max_batch_size=100, max_wait_s=0.01
        )
        scheduler.start()
        q.put("only")
        assert first_batch.wait(timeout=5.0)  # flushed well before 100 arrivals
        assert dispatched == [["only"]]
        q.close()
        scheduler.join(timeout=5.0)

    def test_dispatch_error_does_not_kill_the_loop(self):
        q = AdmissionQueue(64)
        seen, failed = [], []

        def dispatch(batch):
            if batch[0] == "bad":
                raise RuntimeError("boom")
            seen.append(list(batch))

        scheduler = MicroBatchScheduler(
            q, dispatch, max_batch_size=1, max_wait_s=0.0,
            on_batch_error=lambda batch, exc: failed.append((list(batch), exc)),
        )
        for item in ("bad", "good"):
            q.put(item)
        scheduler.start()
        q.close()
        scheduler.join(timeout=5.0)
        assert seen == [["good"]]
        assert len(failed) == 1 and failed[0][0] == ["bad"]
        assert isinstance(failed[0][1], RuntimeError)
        assert scheduler.batches_dispatched == 1  # the failed batch doesn't count

    def test_graceful_drain_processes_everything_queued(self):
        q = AdmissionQueue(64)
        for i in range(7):
            q.put(i)
        batches, _ = self.drain_through(q, max_batch_size=3, max_wait_s=0.0)
        assert sorted(x for b in batches for x in b) == list(range(7))
