"""Admission queue and micro-batch scheduler behaviour."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import ServiceClosedError, ServiceOverloadError
from repro.service import AdmissionQueue, MicroBatchScheduler


class TestAdmissionQueue:
    def test_fifo_and_depth(self):
        q = AdmissionQueue(8)
        assert q.put("a") == 1
        assert q.put("b") == 2
        assert q.depth == 2
        assert q.take_batch(8, 0.0) == ["a", "b"]
        assert q.depth == 0

    def test_take_batch_respects_max_size(self):
        q = AdmissionQueue(16)
        for i in range(10):
            q.put(i)
        assert q.take_batch(4, 0.0) == [0, 1, 2, 3]
        assert q.take_batch(4, 0.0) == [4, 5, 6, 7]
        assert q.take_batch(4, 0.0) == [8, 9]

    def test_backpressure_rejection_carries_retry_after(self):
        q = AdmissionQueue(2)
        q.put("a")
        q.put("b")
        with pytest.raises(ServiceOverloadError) as exc_info:
            q.put("c", retry_after=0.25)
        assert exc_info.value.retry_after == pytest.approx(0.25)
        assert q.depth == 2  # rejected item was not admitted

    def test_closed_queue_rejects_new_but_drains_old(self):
        q = AdmissionQueue(4)
        q.put("a")
        q.close()
        with pytest.raises(ServiceClosedError):
            q.put("b")
        assert q.take_batch(4, 0.0) == ["a"]
        assert q.take_batch(4, 0.0) == []  # drained: the scheduler exit signal

    def test_max_wait_coalesces_late_arrivals(self):
        q = AdmissionQueue(8)
        q.put("a")

        def late_put():
            time.sleep(0.03)
            q.put("b")

        thread = threading.Thread(target=late_put)
        thread.start()
        batch = q.take_batch(8, 0.5)
        thread.join()
        assert batch == ["a", "b"]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            AdmissionQueue(0)


class TestMicroBatchScheduler:
    def drain_through(self, queue, **kwargs):
        """Run a scheduler until the queue drains; returns dispatched batches."""
        batches: list[list] = []
        scheduler = MicroBatchScheduler(
            queue, lambda b: batches.append(list(b)), **kwargs
        )
        scheduler.start()
        queue.close()
        scheduler.join(timeout=5.0)
        assert not scheduler.alive
        return batches, scheduler

    def test_coalesces_up_to_max_batch_size(self):
        q = AdmissionQueue(64)
        for i in range(10):
            q.put(i)
        batches, scheduler = self.drain_through(
            q, max_batch_size=4, max_wait_s=0.0
        )
        assert [len(b) for b in batches] == [4, 4, 2]
        assert sorted(x for b in batches for x in b) == list(range(10))
        assert scheduler.batches_dispatched == 3

    def test_max_wait_flushes_partial_batches(self):
        q = AdmissionQueue(64)
        dispatched = []
        first_batch = threading.Event()

        def dispatch(batch):
            dispatched.append(list(batch))
            first_batch.set()

        scheduler = MicroBatchScheduler(
            q, dispatch, max_batch_size=100, max_wait_s=0.01
        )
        scheduler.start()
        q.put("only")
        assert first_batch.wait(timeout=5.0)  # flushed well before 100 arrivals
        assert dispatched == [["only"]]
        q.close()
        scheduler.join(timeout=5.0)

    def test_dispatch_error_does_not_kill_the_loop(self):
        q = AdmissionQueue(64)
        seen, failed = [], []

        def dispatch(batch):
            if batch[0] == "bad":
                raise RuntimeError("boom")
            seen.append(list(batch))

        scheduler = MicroBatchScheduler(
            q, dispatch, max_batch_size=1, max_wait_s=0.0,
            on_batch_error=lambda batch, exc: failed.append((list(batch), exc)),
        )
        for item in ("bad", "good"):
            q.put(item)
        scheduler.start()
        q.close()
        scheduler.join(timeout=5.0)
        assert seen == [["good"]]
        assert len(failed) == 1 and failed[0][0] == ["bad"]
        assert isinstance(failed[0][1], RuntimeError)
        assert scheduler.batches_dispatched == 1  # the failed batch doesn't count

    def test_graceful_drain_processes_everything_queued(self):
        q = AdmissionQueue(64)
        for i in range(7):
            q.put(i)
        batches, _ = self.drain_through(q, max_batch_size=3, max_wait_s=0.0)
        assert sorted(x for b in batches for x in b) == list(range(7))
