"""Service self-healing: breaker routing, deadline shedding, watchdog.

The scenario behind the design: every worker dies and stays dead.  The
service must fail the affected batch *typed* (never hang), flip
readiness, open the breaker, keep answering through the degraded
single-trial path, and — once the workers heal — recover through one
half-open probe and report it in the metrics.
"""

from __future__ import annotations

import io
import json
import time

import pytest

from repro import JEMConfig, JEMMapper
from repro.errors import DeadlineExceededError, ReproError, ServiceError
from repro.parallel.faults import FaultPlan
from repro.resilience import ResilientWorkerPool
from repro.service import MappingService, ServiceConfig, serve_loop
from repro.service.health import CLOSED, HALF_OPEN, OPEN, CircuitBreaker

CONFIG = JEMConfig(k=12, w=20, ell=500, trials=6, seed=99)

BREAKER_CFG = ServiceConfig(
    processes=2,
    strict=False,
    breaker_failures=1,
    breaker_window=4,
    breaker_cooldown_batches=1,
    max_batch_size=4,
    max_wait_ms=1.0,
    cache_capacity=0,
)


def wait_until(predicate, timeout=10.0, interval=0.02) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestCircuitBreakerUnit:
    def test_disabled_breaker_never_routes(self):
        breaker = CircuitBreaker(failure_threshold=0)
        for _ in range(10):
            assert breaker.record_failure() is None
            assert breaker.decide() == "primary"
        assert breaker.state == CLOSED

    def test_opens_at_threshold_within_window(self):
        breaker = CircuitBreaker(window=4, failure_threshold=2)
        assert breaker.record_failure() is None
        assert breaker.record_failure() == "opened"
        assert breaker.state == OPEN

    def test_window_forgets_old_failures(self):
        breaker = CircuitBreaker(window=3, failure_threshold=2)
        breaker.record_failure()
        for _ in range(3):  # pushes the failure out of the window
            breaker.record_success()
        assert breaker.record_failure() is None
        assert breaker.state == CLOSED

    def test_cooldown_then_half_open_probe_recovers(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_batches=2)
        assert breaker.record_failure() == "opened"
        assert breaker.decide() == "degraded"
        assert breaker.decide() == "degraded"
        assert breaker.decide() == "primary"  # the half-open probe
        assert breaker.state == HALF_OPEN
        assert breaker.record_success() == "recovered"
        assert breaker.state == CLOSED

    def test_failed_probe_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_batches=1)
        breaker.record_failure()
        breaker.decide()  # degraded cooldown
        assert breaker.decide() == "primary"
        assert breaker.record_failure() == "opened"
        assert breaker.state == OPEN


class TestAdaptiveShedUnit:
    def test_shed_ladder_steps_per_open_and_backs_off_per_recovery(self):
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_batches=1, max_shed_level=3
        )
        assert breaker.shed_level == 0
        assert breaker.record_failure() == "opened"
        assert breaker.shed_level == 1
        breaker.decide()  # degraded cooldown
        assert breaker.decide() == "primary"  # half-open probe
        assert breaker.record_failure() == "opened"  # probe failed: reopen
        assert breaker.shed_level == 2
        breaker.decide()
        breaker.decide()
        assert breaker.record_success() == "recovered"
        assert breaker.shed_level == 1  # one step back per recovery

    def test_shed_level_is_clamped_at_max(self):
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_batches=1, max_shed_level=2
        )
        for _ in range(6):  # open, fail the probe, reopen, ...
            breaker.record_failure()
            breaker.decide()
            breaker.decide()
        assert breaker.shed_level == 2

    def test_max_shed_level_validated(self):
        with pytest.raises(ValueError, match="max_shed_level"):
            CircuitBreaker(max_shed_level=0)


class TestAdaptiveShedEndToEnd:
    def pump(self, service, reads, i):
        """One read through the service, swallowing typed batch failures."""
        try:
            service.submit(f"pump{i}", reads.codes_of(i % len(reads))).result(60)
        except ReproError:
            pass

    def test_degraded_trials_halve_as_opens_repeat(
        self, tiling_contigs, clean_reads
    ):
        plan = FaultPlan.kill_all_workers(2, once=False)
        with MappingService.from_contigs(
            tiling_contigs, CONFIG, BREAKER_CFG, faults=plan
        ) as service:
            assert service.degraded_trials() == CONFIG.trials
            with pytest.raises(ServiceError):
                service.submit("r0", clean_reads.codes_of(0)).result(60)
            # first open: half the trials on the degraded path
            assert service.shed_level == 1
            assert service.degraded_trials() == CONFIG.trials >> 1
            assert service.healthz()["shed_level"] == 1
            assert service.metrics.snapshot()["gauges"]["shed_level"] == 1.0

            # every failed half-open probe steps the ladder again: T/4, ...
            for expected in (2, 3):
                i = 0
                while service.shed_level < expected and i < 64:
                    self.pump(service, clean_reads, i)
                    i += 1
                assert service.shed_level == expected
                assert service.degraded_trials() == max(
                    1, CONFIG.trials >> expected
                )
                # the shed degraded path still answers, flagged degraded
                degraded = service.submit(
                    f"shed{expected}", clean_reads.codes_of(1)
                ).result(60)
                assert degraded.degraded is True

    def test_recovery_steps_the_ladder_back_down(
        self, tiling_contigs, clean_reads
    ):
        plan = FaultPlan.kill_all_workers(2, once=False)
        with MappingService.from_contigs(
            tiling_contigs, CONFIG, BREAKER_CFG, faults=plan
        ) as service:
            with pytest.raises(ServiceError):
                service.submit("r0", clean_reads.codes_of(0)).result(60)
            i = 0
            while service.shed_level < 2 and i < 64:
                self.pump(service, clean_reads, i)
                i += 1
            assert service.shed_level == 2

            service.set_fault_plan(None)  # workers heal
            i = 0
            while service.breaker.state != CLOSED and i < 64:
                self.pump(service, clean_reads, i)
                i += 1
            assert service.breaker.state == CLOSED
            assert service.shed_level == 1  # one recovery = one step down
            # recovered answers are primary-path and exact
            sequential = JEMMapper(CONFIG)
            sequential.index(tiling_contigs)
            expected = sequential.map_reads(clean_reads)
            result = service.map_reads(clean_reads)
            assert list(result.subject) == list(expected.subject)


class TestBreakerEndToEnd:
    def test_dead_pool_opens_breaker_degrades_then_recovers(
        self, tiling_contigs, clean_reads
    ):
        plan = FaultPlan.kill_all_workers(2, once=False)
        with MappingService.from_contigs(
            tiling_contigs, CONFIG, BREAKER_CFG, faults=plan
        ) as service:
            # 1. every rank dead and no donor alive: the batch fails TYPED
            with pytest.raises(ServiceError, match="lost to faults"):
                service.submit("r0", clean_reads.codes_of(0)).result(60)
            assert service.breaker.state == OPEN
            assert service.metrics.breaker_open_total.value == 1
            health = service.healthz()
            assert health["live"] and not health["ready"]
            assert health["breaker"] == OPEN

            # 2. while open, reads are answered degraded (single-trial)
            degraded = service.submit("r1", clean_reads.codes_of(1)).result(60)
            assert degraded.degraded is True
            assert service.metrics.degraded_total.value >= 1
            assert service.breaker.state == OPEN

            # 3. workers heal; the half-open probe closes the breaker
            service.set_fault_plan(None)
            recovered = service.submit("r2", clean_reads.codes_of(2)).result(60)
            assert recovered.degraded is False
            assert service.breaker.state == CLOSED
            assert service.metrics.recovered_total.value == 1
            assert service.healthz()["ready"] is True

            # 4. recovered results match the sequential mapper bit for bit
            sequential = JEMMapper(CONFIG)
            sequential.index(tiling_contigs)
            expected = sequential.map_reads(clean_reads)
            result = service.map_reads(clean_reads)
            assert list(result.subject) == list(expected.subject)
            assert list(result.hit_count) == list(expected.hit_count)

    def test_no_request_hangs_under_total_worker_loss(
        self, tiling_contigs, clean_reads
    ):
        plan = FaultPlan.kill_all_workers(2, once=False)
        with MappingService.from_contigs(
            tiling_contigs, CONFIG, BREAKER_CFG, faults=plan
        ) as service:
            futures = [
                service.submit(clean_reads.names[i], clean_reads.codes_of(i))
                for i in range(len(clean_reads))
            ]
            outcomes = []
            for future in futures:
                try:
                    outcomes.append(future.result(60))
                except ReproError as exc:  # typed rejection, not a hang
                    outcomes.append(exc)
            assert len(outcomes) == len(clean_reads)

    def test_degraded_results_are_not_cached(self, tiling_contigs, clean_reads):
        cfg = ServiceConfig(
            processes=2, strict=False, breaker_failures=1,
            breaker_cooldown_batches=8, cache_capacity=64,
        )
        plan = FaultPlan.kill_all_workers(2, once=False)
        with MappingService.from_contigs(
            tiling_contigs, CONFIG, cfg, faults=plan
        ) as service:
            with pytest.raises(ServiceError):
                service.submit("r0", clean_reads.codes_of(0)).result(60)
            degraded = service.submit("dup", clean_reads.codes_of(1)).result(60)
            assert degraded.degraded
            assert len(service.cache) == 0
            again = service.submit("dup", clean_reads.codes_of(1)).result(60)
            assert again.degraded and not again.cached


class TestDeadlineShedding:
    def test_expired_request_is_shed_before_dispatch(self, tiling_contigs, clean_reads):
        mapper = JEMMapper(CONFIG)
        mapper.index(tiling_contigs)
        service = MappingService(mapper, ServiceConfig(), auto_start=False)
        doomed = service.submit("late", clean_reads.codes_of(0), deadline_s=0.02)
        fine = service.submit("fine", clean_reads.codes_of(1))
        time.sleep(0.1)  # the deadline expires while still queued
        service.start()
        try:
            with pytest.raises(DeadlineExceededError, match="shed") as info:
                doomed.result(30)
            assert info.value.elapsed >= 0.02
            assert fine.result(30).subject is not None
            assert service.metrics.shed_total.value == 1
            assert service.metrics.errors_total.value == 0
        finally:
            service.drain()

    def test_unexpired_deadline_maps_normally(self, tiling_contigs, clean_reads):
        with MappingService.from_contigs(tiling_contigs, CONFIG) as service:
            mapping = service.submit(
                "r0", clean_reads.codes_of(0), deadline_s=30.0
            ).result(30)
            assert mapping.degraded is False
            assert service.metrics.shed_total.value == 0

    def test_nonpositive_deadline_rejected(self, tiling_contigs, clean_reads):
        with MappingService.from_contigs(tiling_contigs, CONFIG) as service:
            with pytest.raises(ServiceError, match="deadline_s"):
                service.submit("r0", clean_reads.codes_of(0), deadline_s=0.0)


class TestHealthSurface:
    def test_healthz_lifecycle(self, tiling_contigs):
        service = MappingService.from_contigs(tiling_contigs, CONFIG)
        health = service.healthz()
        native = health.pop("native")
        assert health == {
            "live": True, "ready": True, "draining": False,
            "breaker": CLOSED, "shed_level": 0, "queue_depth": 0,
            "index_generation": 0,
        }
        # the fused-kernel surface: availability, thread count, and a
        # recorded reason whenever the native path is off
        assert set(native) == {"available", "threads", "error"}
        assert native["threads"] >= 1
        if not native["available"]:
            assert native["error"]
        assert service.metrics.ready.value == 1.0
        service.drain()
        health = service.healthz()
        assert health["live"] is False and health["ready"] is False
        assert service.metrics.ready.value == 0.0

    def test_protocol_health_op(self, tiling_contigs):
        service = MappingService.from_contigs(tiling_contigs, CONFIG)
        out = io.StringIO()
        serve_loop(
            service, io.StringIO('{"op": "health"}\n{"op": "ping"}\n'), out
        )
        lines = [json.loads(line) for line in out.getvalue().splitlines()]
        assert lines[0]["op"] == "health"
        assert lines[0]["live"] is True and lines[0]["ready"] is True
        assert lines[0]["breaker"] == CLOSED
        assert lines[1] == {"op": "pong"}
        assert lines[-1]["op"] == "drained"


class TestWatchdog:
    def test_watchdog_rebuilds_killed_pool(self, tiling_contigs):
        mapper = JEMMapper(CONFIG)
        mapper.index(tiling_contigs)
        cfg = ServiceConfig(watchdog_interval_ms=20.0)
        service = MappingService(mapper, cfg)
        try:
            pool = ResilientWorkerPool(mapper.table, "columnar", processes=2)
            service.attach_pool(pool)
            assert wait_until(lambda: service.healthz()["pool"]["healthy"])
            pool.kill_workers()
            assert wait_until(lambda: pool.rebuilds >= 1), "watchdog never rebuilt"
            assert wait_until(lambda: service.healthz()["pool"]["healthy"])
            assert service.metrics.pool_rebuilds_total.value >= 1
        finally:
            service.drain()
        assert not pool.healthy()  # drain closed the pool with the service
