"""MappingService behaviour: determinism, caching, backpressure, faults.

The load-bearing invariant: for any batching, caching, submission order,
or recoverable fault plan, the service's per-read results are
bit-identical to a sequential :class:`JEMMapper` over the same reads.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro import JEMConfig, JEMMapper, save_index
from repro.errors import (
    SequenceError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadError,
)
from repro.parallel.driver import run_parallel_jem
from repro.parallel.faults import FaultPlan, FaultSpec
from repro.service import MappingService, ServiceConfig

CONFIG = JEMConfig(k=12, w=20, ell=500, trials=6, seed=99)


@pytest.fixture
def sequential(tiling_contigs, clean_reads):
    mapper = JEMMapper(CONFIG)
    mapper.index(tiling_contigs)
    return mapper.map_reads(clean_reads)


def assert_same_mapping(actual, expected):
    assert actual.segment_names == expected.segment_names
    assert np.array_equal(actual.subject, expected.subject)
    assert np.array_equal(actual.hit_count, expected.hit_count)


class TestDeterminism:
    def test_bit_identical_to_sequential(self, tiling_contigs, clean_reads, sequential):
        with MappingService.from_contigs(
            tiling_contigs, CONFIG, ServiceConfig(max_batch_size=7, max_wait_ms=1.0)
        ) as service:
            result = service.map_reads(clean_reads)
        assert_same_mapping(result, sequential)
        assert result.infos == sequential.infos

    def test_bit_identical_to_parallel_driver(
        self, tiling_contigs, clean_reads, sequential
    ):
        parallel = run_parallel_jem(tiling_contigs, clean_reads, CONFIG, p=4)
        with MappingService.from_contigs(
            tiling_contigs, CONFIG, ServiceConfig(processes=4)
        ) as service:
            result = service.map_reads(clean_reads)
        assert_same_mapping(result, parallel.mapping)
        assert_same_mapping(result, sequential)

    def test_bit_identical_under_seeded_fault_plan(
        self, tiling_contigs, clean_reads, sequential
    ):
        for seed in (1, 2, 3):
            plan = FaultPlan.seeded(seed, 4, delay=0.001)
            with MappingService.from_contigs(
                tiling_contigs, CONFIG,
                ServiceConfig(processes=4, max_batch_size=8),
                faults=plan,
            ) as service:
                result = service.map_reads(clean_reads)
            assert_same_mapping(result, sequential)

    def test_cache_hits_do_not_change_results(
        self, tiling_contigs, clean_reads, sequential
    ):
        with MappingService.from_contigs(tiling_contigs, CONFIG) as service:
            first = service.map_reads(clean_reads)
            second = service.map_reads(clean_reads)  # all duplicates
            assert service.metrics.cache_hits_total.value == len(clean_reads)
        assert_same_mapping(first, sequential)
        assert_same_mapping(second, sequential)

    def test_from_saved_index_bundle(
        self, tmp_path, tiling_contigs, clean_reads, sequential
    ):
        mapper = JEMMapper(CONFIG)
        mapper.index(tiling_contigs)
        path = save_index(mapper, str(tmp_path / "bundle.npz"))
        with MappingService.from_index(path) as service:
            result = service.map_reads(clean_reads)
        assert_same_mapping(result, sequential)


class TestCachingAndMetrics:
    def test_duplicate_named_differently_still_hits(self, tiling_contigs, clean_reads):
        with MappingService.from_contigs(tiling_contigs, CONFIG) as service:
            a = service.submit("alias_a", clean_reads.codes_of(0)).result(30)
            b = service.submit("alias_b", clean_reads.codes_of(0)).result(30)
            assert service.metrics.cache_hits_total.value >= 1
        assert a.subject == b.subject
        assert a.hit_count == b.hit_count
        assert a.segment_names != b.segment_names  # names re-attached per read

    def test_metrics_account_every_request(self, tiling_contigs, clean_reads):
        with MappingService.from_contigs(tiling_contigs, CONFIG) as service:
            service.map_reads(clean_reads)
            snap = service.metrics.snapshot()
        n = len(clean_reads)
        assert snap["counters"]["requests_total"] == n
        assert snap["counters"]["responses_total"] == n
        assert snap["counters"]["cache_misses_total"] == n
        assert snap["counters"]["batches_total"] >= 1
        assert snap["histograms"]["request_latency_seconds"]["count"] == n
        assert snap["histograms"]["batch_size_reads"]["count"] >= 1
        assert snap["gauges"]["inflight"] == 0

    def test_cache_capacity_zero_disables(self, tiling_contigs, clean_reads):
        with MappingService.from_contigs(
            tiling_contigs, CONFIG, ServiceConfig(cache_capacity=0)
        ) as service:
            service.map_reads(clean_reads)
            service.map_reads(clean_reads)
            assert service.metrics.cache_hits_total.value == 0


class TestAdmissionControl:
    def test_overload_rejects_with_retry_after(self, tiling_contigs, clean_reads):
        release = threading.Event()
        service = MappingService.from_contigs(
            tiling_contigs, CONFIG,
            ServiceConfig(queue_capacity=1, max_batch_size=1, max_wait_ms=0.0),
        )
        original = service._map_misses

        def blocking_map(requests, view):
            release.wait(timeout=30)
            return original(requests, view)

        service._map_misses = blocking_map
        try:
            # first request occupies the scheduler...
            futures = [service.submit(clean_reads.names[0], clean_reads.codes_of(0))]
            deadline = time.monotonic() + 10.0
            while service._queue.depth > 0:  # wait for the scheduler to take it
                assert time.monotonic() < deadline
                time.sleep(0.001)
            # ...the second fills the queue, the third must bounce
            futures.append(service.submit(clean_reads.names[1], clean_reads.codes_of(1)))
            with pytest.raises(ServiceOverloadError) as exc_info:
                service.submit(clean_reads.names[2], clean_reads.codes_of(2))
            assert exc_info.value.retry_after > 0
            assert service.metrics.rejected_total.value == 1
        finally:
            release.set()
            service.drain()
        for future in futures:
            future.result(30)  # accepted requests all complete

    def test_empty_read_rejected_at_submit(self, tiling_contigs):
        with MappingService.from_contigs(tiling_contigs, CONFIG) as service:
            with pytest.raises(SequenceError):
                service.submit("empty", np.empty(0, dtype=np.uint8))


class TestDrain:
    def test_drain_is_idempotent_and_closes_admission(
        self, tiling_contigs, clean_reads
    ):
        service = MappingService.from_contigs(tiling_contigs, CONFIG)
        future = service.submit(clean_reads.names[0], clean_reads.codes_of(0))
        service.drain()
        assert service.drained
        assert future.done()
        future.result(1)
        with pytest.raises(ServiceClosedError):
            service.submit(clean_reads.names[1], clean_reads.codes_of(1))
        service.drain()  # idempotent

    def test_accepted_work_is_never_dropped(self, tiling_contigs, clean_reads):
        service = MappingService.from_contigs(
            tiling_contigs, CONFIG, ServiceConfig(max_batch_size=3, max_wait_ms=50.0)
        )
        futures = [
            service.submit(clean_reads.names[i], clean_reads.codes_of(i))
            for i in range(len(clean_reads))
        ]
        service.drain()
        assert all(f.done() for f in futures)
        assert service.metrics.responses_total.value == len(futures)


class TestFaultDegradation:
    def plan(self) -> FaultPlan:
        # permanent unit-scoped crash on query block 0: unrecoverable
        return FaultPlan([
            FaultSpec(kind="crash", phase="map", block=0, times=None, unit_scoped=True)
        ])

    def test_no_strict_fails_only_lost_reads(self, tiling_contigs, clean_reads):
        with MappingService.from_contigs(
            tiling_contigs, CONFIG,
            ServiceConfig(processes=2, strict=False, max_batch_size=64,
                          max_wait_ms=20.0),
            faults=self.plan(),
        ) as service:
            futures = [
                service.submit(clean_reads.names[i], clean_reads.codes_of(i))
                for i in range(len(clean_reads))
            ]
            outcomes = []
            for future in futures:
                try:
                    outcomes.append(future.result(30))
                except ServiceError as exc:
                    outcomes.append(exc)
            errors = [o for o in outcomes if isinstance(o, ServiceError)]
            mapped = [o for o in outcomes if not isinstance(o, ServiceError)]
            assert errors, "block 0's reads must surface the fault"
            assert mapped, "surviving blocks must still be served"
            assert service.metrics.errors_total.value == len(errors)

    def test_strict_fails_the_batch(self, tiling_contigs, clean_reads):
        from repro.errors import PartialResultError

        with MappingService.from_contigs(
            tiling_contigs, CONFIG,
            ServiceConfig(processes=2, strict=True, max_batch_size=64,
                          max_wait_ms=20.0),
            faults=self.plan(),
        ) as service:
            futures = [
                service.submit(clean_reads.names[i], clean_reads.codes_of(i))
                for i in range(4)
            ]
            for future in futures:
                with pytest.raises(PartialResultError):
                    future.result(30)
