"""Unit tests for the service metrics registry."""

from __future__ import annotations

import json

import pytest

from repro.service import Counter, Gauge, LatencyHistogram, ServiceMetrics


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter()
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative_increment(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestGauge:
    def test_set_and_add(self):
        g = Gauge()
        g.set(3.0)
        g.add(-1.5)
        assert g.value == 1.5


class TestLatencyHistogram:
    def test_empty_snapshot_is_all_zero(self):
        snap = LatencyHistogram().snapshot()
        assert snap["count"] == 0
        assert snap["p50"] == snap["p95"] == snap["p99"] == 0.0

    def test_quantiles_on_known_values(self):
        h = LatencyHistogram()
        for v in range(1, 101):
            h.observe(float(v))
        snap = h.snapshot()
        assert snap["count"] == 100
        assert snap["min"] == 1.0 and snap["max"] == 100.0
        assert snap["sum"] == pytest.approx(5050.0)
        assert snap["mean"] == pytest.approx(50.5)
        assert 50.0 <= snap["p50"] <= 51.0
        assert 94.0 <= snap["p95"] <= 96.0
        assert 98.0 <= snap["p99"] <= 100.0

    def test_window_bounds_reservoir_but_not_totals(self):
        h = LatencyHistogram(window=10)
        for v in range(1000):
            h.observe(float(v))
        snap = h.snapshot()
        assert snap["count"] == 1000  # exact over the full stream
        assert snap["max"] == 999.0
        # quantiles come from the last 10 observations only
        assert snap["p50"] >= 990.0

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            LatencyHistogram(window=0)


class TestServiceMetrics:
    def test_snapshot_is_json_serialisable(self):
        m = ServiceMetrics()
        m.requests_total.inc(3)
        m.queue_depth.set(2)
        m.queue_wait.observe(0.01)
        snap = json.loads(m.to_json())
        assert snap["counters"]["requests_total"] == 3
        assert snap["gauges"]["queue_depth"] == 2
        assert snap["histograms"]["queue_wait_seconds"]["count"] == 1

    def test_cache_hit_ratio(self):
        m = ServiceMetrics()
        assert m.cache_hit_ratio == 0.0
        m.cache_hits_total.inc(3)
        m.cache_misses_total.inc(1)
        assert m.cache_hit_ratio == pytest.approx(0.75)
