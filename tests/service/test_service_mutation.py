"""Online index mutation through MappingService: generational reads.

The service-level contract of the LSM layer: mutations apply while the
service keeps answering, every response is computed **entirely** against
one index generation (never a mix), the result cache can never leak an
answer across generations, and the background watchdog performs flush /
compaction without disturbing in-flight batches.
"""

from __future__ import annotations

import io
import json
import threading
import time

import numpy as np
import pytest

from repro import JEMConfig, JEMMapper
from repro.core.lsm import MutableSketchStore
from repro.seq.records import SequenceSet
from repro.service import MappingService, ServiceConfig, serve_loop

CONFIG = JEMConfig(k=12, w=20, ell=300, trials=5, seed=17)

SERVICE = ServiceConfig(max_batch_size=4, max_wait_ms=1.0)


def _dna(rng, n: int) -> str:
    return "".join("ACGT"[c] for c in rng.integers(0, 4, size=n))


@pytest.fixture
def genome(rng):
    """Six 900bp contigs: long enough for both end segments to map home."""
    return {f"c{i}": _dna(rng, 900) for i in range(6)}


@pytest.fixture
def contigs(genome):
    return SequenceSet.from_strings(list(genome.items()))


def read_for(name: str, genome) -> tuple[str, str]:
    """A read that *is* its contig — both end segments must map to it."""
    return (f"read_{name}", genome[name])


def mapped_names(service, reads: SequenceSet) -> list[str | None]:
    """(prefix, suffix) labels per read, through the service."""
    futures = [
        service.submit(reads.names[i], reads[i].sequence)
        for i in range(len(reads))
    ]
    out: list[str | None] = []
    for future in futures:
        mapping = future.result(30.0)
        out.extend(mapping.subject_names)
    return out


def rebuilt_names(live_pairs, reads: SequenceSet) -> list[str | None]:
    mapper = JEMMapper(CONFIG)
    mapper.index(SequenceSet.from_strings(live_pairs))
    result = mapper.map_reads(reads)
    return [
        mapper.subject_names[s] if s >= 0 else None for s in result.subject
    ]


class TestMutationParity:
    @pytest.mark.parametrize("no_native", [False, True])
    def test_add_remove_compact_match_rebuild(
        self, genome, contigs, rng, no_native, monkeypatch
    ):
        if no_native:
            monkeypatch.setenv("REPRO_NO_NATIVE", "1")
        new_name, new_seq = "n0", _dna(rng, 900)
        reads = SequenceSet.from_strings(
            [read_for("c0", genome), read_for("c3", genome),
             ("read_n0", new_seq)]
        )
        with MappingService.from_contigs(contigs, CONFIG, SERVICE) as service:
            assert service.index_generation == 0
            before = mapped_names(service, reads)
            assert before[:4] == ["c0", "c0", "c3", "c3"]

            stats = service.add_contigs(
                SequenceSet.from_strings([(new_name, new_seq)])
            )
            assert stats["generation"] == service.index_generation > 0
            service.remove_contigs(["c3"])
            service.flush_index()
            service.compact_index()

            got = mapped_names(service, reads)
            live = [(n, s) for n, s in genome.items() if n != "c3"]
            live.append((new_name, new_seq))
            want = rebuilt_names(live, reads)
            assert got == want
            assert got[:2] == ["c0", "c0"]
            assert "c3" not in got
            assert got[4:] == [new_name, new_name]

    def test_cache_never_leaks_across_generations(self, genome, contigs):
        """The same read, before and after a removal, answers differently."""
        reads = SequenceSet.from_strings([read_for("c2", genome)])
        with MappingService.from_contigs(contigs, CONFIG, SERVICE) as service:
            first = mapped_names(service, reads)
            assert first == ["c2", "c2"]
            # prime the cache: an identical resubmit is a hit
            mapped_names(service, reads)
            assert service.metrics.cache_hits_total.value >= 1
            service.remove_contigs(["c2"])
            after = mapped_names(service, reads)
            assert "c2" not in after

    def test_mutating_a_static_index_wraps_it_in_place(self, contigs, rng):
        """First mutation on a bundle-loaded store goes mutable, no rebuild."""
        with MappingService.from_contigs(contigs, CONFIG, SERVICE) as service:
            assert not isinstance(service._mapper.table, MutableSketchStore)
            service.add_contigs(
                SequenceSet.from_strings([("w0", _dna(rng, 900))])
            )
            assert isinstance(service._mapper.table, MutableSketchStore)
            assert service.index_generation == 1

    def test_store_stats_and_healthz_report_generation(self, genome, contigs, rng):
        with MappingService.from_contigs(contigs, CONFIG, SERVICE) as service:
            stats = service.store_stats()
            assert stats["generation"] == 0
            assert stats["segments"] == 1
            service.add_contigs(
                SequenceSet.from_strings([("h0", _dna(rng, 900))])
            )
            stats = service.store_stats()
            assert stats["generation"] == 1
            assert stats["memtable_entries"] > 0
            health = service.healthz()
            assert health["index_generation"] == 1
            snap = service.metrics.snapshot()
            assert snap["gauges"]["index_generation"] == 1.0
            assert snap["counters"]["mutations_total"] == 1


class TestGenerationIsolation:
    def test_sustained_load_no_mixed_generation_responses(
        self, genome, contigs, rng
    ):
        """ISSUE acceptance: mutate under load; every response whole.

        Each read is byte-identical to one contig, so within any single
        generation its two end segments either both map to that contig
        (live) or neither does (removed/never-added).  A split answer
        would prove a response straddled a generation swap.
        """
        late = {f"n{i}": _dna(rng, 900) for i in range(3)}
        world = {**genome, **late}
        violations: list[tuple[str, tuple]] = []
        errors: list[BaseException] = []
        answered = [0]
        stop = threading.Event()

        with MappingService.from_contigs(contigs, CONFIG, SERVICE) as service:

            def hammer(tseed: int) -> None:
                trng = np.random.default_rng(tseed)
                names = list(world)
                while not stop.is_set():
                    target = names[int(trng.integers(0, len(names)))]
                    try:
                        future = service.submit(
                            f"read_{target}", world[target]
                        )
                        mapping = future.result(30.0)
                    except BaseException as exc:  # noqa: BLE001
                        errors.append(exc)
                        return
                    prefix, suffix = mapping.subject_names
                    if (prefix == target) != (suffix == target):
                        violations.append((target, mapping.subject_names))
                    answered[0] += 1

            threads = [
                threading.Thread(target=hammer, args=(100 + i,), daemon=True)
                for i in range(3)
            ]
            for t in threads:
                t.start()
            # the mutation schedule runs while the hammers are going
            for name, seq in late.items():
                service.add_contigs(SequenceSet.from_strings([(name, seq)]))
                time.sleep(0.05)
            service.remove_contigs(["c1"])
            time.sleep(0.05)
            service.flush_index()
            service.remove_contigs(["c4", "n1"])
            time.sleep(0.05)
            service.compact_index()
            time.sleep(0.2)
            stop.set()
            for t in threads:
                t.join(timeout=30.0)

            assert not errors, errors[:1]
            assert not violations, violations[:5]
            assert answered[0] > 0
            # and the settled index answers exactly like a rebuild
            live = [
                (n, s) for n, s in world.items()
                if n not in ("c1", "c4", "n1")
            ]
            reads = SequenceSet.from_strings(
                [read_for(n, world) for n in world]
            )
            assert mapped_names(service, reads) == rebuilt_names(live, reads)


class TestAutoMaintenance:
    def test_memtable_flush_threshold_seals_segments(self, contigs, rng):
        config = ServiceConfig(
            max_batch_size=4, max_wait_ms=1.0, memtable_flush_entries=1
        )
        with MappingService.from_contigs(contigs, CONFIG, config) as service:
            service.add_contigs(
                SequenceSet.from_strings([("a0", _dna(rng, 900))])
            )
            stats = service.store_stats()
            assert stats["memtable_entries"] == 0
            assert stats["segments"] == 2
            assert service.metrics.snapshot()["counters"]["flushes_total"] == 1

    def test_watchdog_compacts_past_segment_limit(self, contigs, rng):
        config = ServiceConfig(
            max_batch_size=4, max_wait_ms=1.0,
            watchdog_interval_ms=5.0,
            memtable_flush_entries=1, compact_segments=2,
        )
        with MappingService.from_contigs(contigs, CONFIG, config) as service:
            for i in range(2):
                service.add_contigs(
                    SequenceSet.from_strings([(f"g{i}", _dna(rng, 900))])
                )
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if service.store_stats()["segments"] == 1:
                    break
                time.sleep(0.01)
            stats = service.store_stats()
            assert stats["segments"] == 1
            assert stats["tombstones"] == 0
            counters = service.metrics.snapshot()["counters"]
            assert counters["compactions_total"] >= 1


class TestServeLoopOps:
    def run_session(self, service, messages) -> list[dict]:
        requests = "".join(json.dumps(m) + "\n" for m in messages)
        out = io.StringIO()
        serve_loop(service, io.StringIO(requests), out)
        return [json.loads(line) for line in out.getvalue().splitlines()]

    def test_mutation_ops_over_the_pipe_protocol(self, genome, contigs, rng):
        new_seq = _dna(rng, 900)
        with MappingService.from_contigs(contigs, CONFIG, SERVICE) as service:
            replies = self.run_session(service, [
                {"op": "stats"},
                {"op": "map", "id": 0, "name": "r0", "seq": new_seq},
                {"op": "add_contigs", "names": ["p0"], "seqs": [new_seq]},
                {"op": "map", "id": 1, "name": "r0", "seq": new_seq},
                {"op": "remove_contigs", "names": ["c5"]},
                {"op": "flush"},
                {"op": "compact"},
                {"op": "stats"},
            ])
        by_op = {}
        maps = []
        for reply in replies:
            if "results" in reply:
                maps.append(reply)
            else:
                by_op.setdefault(reply["op"], []).append(reply)
        assert by_op["stats"][0]["generation"] == 0
        assert by_op["add_contigs"][0]["generation"] == 1
        assert by_op["stats"][-1]["generation"] == 4
        assert by_op["stats"][-1]["stats"]["segments"] == 1
        # before the add the read is unmapped; after, both ends hit p0
        assert [r["contig"] for r in maps[0]["results"]] == [None, None]
        assert [r["contig"] for r in maps[1]["results"]] == ["p0", "p0"]

    def test_bad_mutation_is_an_error_reply_not_a_crash(self, contigs):
        with MappingService.from_contigs(contigs, CONFIG, SERVICE) as service:
            replies = self.run_session(service, [
                {"op": "remove_contigs", "names": ["ghost"]},
                {"op": "stats"},
            ])
        assert "error" in replies[0]
        assert replies[1]["op"] == "stats"  # session survived
