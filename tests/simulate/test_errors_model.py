import numpy as np
import pytest

from repro.errors import DatasetError
from repro.simulate import HIFI_ERRORS, ErrorModel, apply_errors


def test_zero_errors_is_identity(rng):
    codes = rng.integers(0, 4, size=1000).astype(np.uint8)
    out = apply_errors(codes, ErrorModel(), rng)
    assert np.array_equal(out, codes)
    assert out is not codes  # copy, not alias


def test_substitutions_change_bases(rng):
    codes = np.zeros(20_000, dtype=np.uint8)
    out = apply_errors(codes, ErrorModel(substitution=0.1), rng)
    assert out.size == codes.size
    changed = (out != codes).mean()
    assert 0.05 < changed < 0.15
    # substitutions always pick a *different* base
    assert (out[out != codes] != 0).all()


def test_insertions_grow_sequence(rng):
    codes = rng.integers(0, 4, size=20_000).astype(np.uint8)
    out = apply_errors(codes, ErrorModel(insertion=0.05), rng)
    assert out.size > codes.size
    assert abs(out.size - codes.size * 1.05) < codes.size * 0.02


def test_deletions_shrink_sequence(rng):
    codes = rng.integers(0, 4, size=20_000).astype(np.uint8)
    out = apply_errors(codes, ErrorModel(deletion=0.05), rng)
    assert out.size < codes.size
    assert abs(out.size - codes.size * 0.95) < codes.size * 0.02


def test_hifi_accuracy_regime(rng):
    assert HIFI_ERRORS.accuracy > 0.998


def test_empty_input(rng):
    out = apply_errors(np.empty(0, dtype=np.uint8), HIFI_ERRORS, rng)
    assert out.size == 0


def test_invalid_rates():
    with pytest.raises(DatasetError):
        ErrorModel(substitution=0.6, insertion=0.5)
    with pytest.raises(DatasetError):
        ErrorModel(substitution=-0.1)


def test_error_identity_rate(rng):
    """Edit distance to the original tracks the configured error rate."""
    from repro.align import banded_edit_distance

    codes = rng.integers(0, 4, size=3000).astype(np.uint8)
    model = ErrorModel(substitution=0.006, insertion=0.002, deletion=0.002)
    out = apply_errors(codes, model, rng)
    d = banded_edit_distance(codes, out, band=64)
    rate = d / codes.size
    assert rate < 0.02  # ~1% errors, with slack
    assert d > 0
