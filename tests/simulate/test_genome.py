import numpy as np
import pytest

from repro.errors import DatasetError
from repro.simulate import GenomeProfile, simulate_genome


def test_length_and_range():
    g = simulate_genome(GenomeProfile(length=10_000), rng=1)
    assert g.size == 10_000
    assert g.dtype == np.uint8
    assert g.max() <= 3


def test_deterministic_by_seed():
    a = simulate_genome(GenomeProfile(length=5_000, repeat_fraction=0.1), rng=7)
    b = simulate_genome(GenomeProfile(length=5_000, repeat_fraction=0.1), rng=7)
    assert np.array_equal(a, b)


def test_seed_sensitivity():
    a = simulate_genome(GenomeProfile(length=5_000), rng=1)
    b = simulate_genome(GenomeProfile(length=5_000), rng=2)
    assert not np.array_equal(a, b)


def test_gc_content_controls_composition():
    high_gc = simulate_genome(GenomeProfile(length=100_000, gc_content=0.8), rng=1)
    frac_gc = np.isin(high_gc, [1, 2]).mean()
    assert 0.75 < frac_gc < 0.85


def test_repeats_increase_kmer_duplication():
    from repro.sketch import canonical_kmer_ranks

    plain = simulate_genome(GenomeProfile(length=100_000, repeat_fraction=0.0), rng=3)
    repetitive = simulate_genome(
        GenomeProfile(length=100_000, repeat_fraction=0.3, repeat_divergence=0.0), rng=3
    )
    def dup_fraction(g):
        canon, _ = canonical_kmer_ranks(g, 16)
        _, counts = np.unique(canon, return_counts=True)
        return (counts > 1).sum() / counts.size

    assert dup_fraction(repetitive) > dup_fraction(plain) + 0.05


@pytest.mark.parametrize(
    "kwargs",
    [
        {"length": 0},
        {"length": 100, "gc_content": 0.0},
        {"length": 100, "repeat_fraction": 1.0},
        {"length": 100, "repeat_length": 0},
        {"length": 100, "repeat_divergence": 1.0},
    ],
)
def test_invalid_profiles(kwargs):
    with pytest.raises(DatasetError):
        GenomeProfile(**kwargs)
