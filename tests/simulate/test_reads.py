import numpy as np
import pytest

from repro.errors import DatasetError
from repro.simulate import (
    ErrorModel,
    HiFiProfile,
    IlluminaProfile,
    simulate_hifi_reads,
    simulate_short_reads,
)


@pytest.fixture
def genome(rng):
    return rng.integers(0, 4, size=100_000).astype(np.uint8)


def test_hifi_coverage(genome, rng):
    reads = simulate_hifi_reads(genome, HiFiProfile(coverage=5, median_length=8_000), rng)
    assert reads.total_bases >= 5 * genome.size
    assert reads.total_bases < 6 * genome.size  # one read of overshoot max


def test_hifi_truth_coordinates_match_source(genome, rng):
    reads = simulate_hifi_reads(
        genome, HiFiProfile(coverage=2, median_length=5_000, errors=ErrorModel()), rng
    )
    for i in range(min(10, len(reads))):
        meta = reads.metas[i]
        src = genome[meta["ref_start"] : meta["ref_end"]]
        got = reads.codes_of(i)
        if meta["ref_strand"] == -1:
            src = (3 - src)[::-1]
        assert np.array_equal(got, src)


def test_hifi_length_distribution(genome, rng):
    profile = HiFiProfile(coverage=10, median_length=10_000, min_length=1_000)
    reads = simulate_hifi_reads(genome, profile, rng)
    lengths = reads.lengths
    assert abs(np.median(lengths) - 10_000) < 2_000
    assert lengths.min() >= 1_000


def test_hifi_both_strands(genome, rng):
    reads = simulate_hifi_reads(genome, HiFiProfile(coverage=5), rng)
    strands = {m["ref_strand"] for m in reads.metas}
    assert strands == {1, -1}


def test_hifi_genome_too_short(rng):
    with pytest.raises(DatasetError):
        simulate_hifi_reads(np.zeros(100, dtype=np.uint8), HiFiProfile(), rng)


def test_short_reads_count_and_length(genome, rng):
    reads = simulate_short_reads(genome, IlluminaProfile(coverage=10, read_length=100), rng)
    assert len(reads) == genome.size * 10 // 100
    assert (reads.lengths == 100).all()


def test_short_reads_error_rate(genome, rng):
    clean = IlluminaProfile(coverage=1, substitution_rate=0.0, both_strands=False)
    reads = simulate_short_reads(genome, clean, np.random.default_rng(5))
    # error-free forward reads are exact substrings
    for i in range(5):
        codes = reads.codes_of(i)
        s = codes.tobytes()
        assert s in genome.tobytes()


def test_short_reads_deterministic(genome):
    a = simulate_short_reads(genome, IlluminaProfile(coverage=2), np.random.default_rng(3))
    b = simulate_short_reads(genome, IlluminaProfile(coverage=2), np.random.default_rng(3))
    assert np.array_equal(a.buffer, b.buffer)


def test_invalid_profiles():
    with pytest.raises(DatasetError):
        IlluminaProfile(coverage=0)
    with pytest.raises(DatasetError):
        HiFiProfile(coverage=-1)
    with pytest.raises(DatasetError):
        HiFiProfile(median_length=100, min_length=1_000)
