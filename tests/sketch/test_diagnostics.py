import numpy as np

from repro.core import JEMConfig, JEMMapper
from repro.seq import SequenceSet, decode, random_codes
from repro.sketch.diagnostics import observed_minimizer_density, table_stats


def make_contigs(rng, n=6, length=2_000):
    return SequenceSet.from_strings(
        [(f"c{i}", decode(random_codes(length, rng))) for i in range(n)]
    )


def test_table_stats_shapes(rng):
    contigs = make_contigs(rng)
    mapper = JEMMapper(JEMConfig(k=12, w=20, ell=500, trials=8, seed=2))
    table = mapper.index(contigs)
    stats = table_stats(table)
    assert stats.trials == 8
    assert stats.n_subjects == 6
    assert stats.total_entries == table.total_entries
    assert stats.nbytes == table.nbytes
    assert stats.entries_per_trial_mean > 0
    assert stats.distinct_values_per_trial_mean <= stats.entries_per_trial_mean
    assert 1.0 <= stats.mean_subjects_per_value <= stats.max_subjects_per_value


def test_table_stats_repetitive_subjects(rng):
    """Identical subjects share every sketch value -> max bucket = n."""
    seq = decode(random_codes(2_000, rng))
    contigs = SequenceSet.from_strings([(f"c{i}", seq) for i in range(4)])
    mapper = JEMMapper(JEMConfig(k=12, w=20, ell=500, trials=4, seed=2))
    stats = table_stats(mapper.index(contigs))
    assert stats.max_subjects_per_value == 4


def test_format_report(rng):
    contigs = make_contigs(rng)
    mapper = JEMMapper(JEMConfig(k=12, w=20, ell=500, trials=4, seed=2))
    report = table_stats(mapper.index(contigs)).format_report()
    assert "sketch table" in report and "subjects per value" in report


def test_observed_density_tracks_theory(rng):
    contigs = make_contigs(rng, n=4, length=20_000)
    w = 30
    density = observed_minimizer_density(contigs, 12, w)
    expected = 2.0 / (w + 1)
    assert 0.5 * expected < density < 2.0 * expected


def test_density_empty_set():
    assert observed_minimizer_density(SequenceSet.empty(), 12, 10) == 0.0
