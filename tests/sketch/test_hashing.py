import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SketchError
from repro.sketch import HashFamily, is_prime_u64


def test_is_prime_small():
    primes = [2, 3, 5, 7, 11, 13, 97, 2147483647]
    composites = [0, 1, 4, 9, 100, 2147483645]
    assert all(is_prime_u64(p) for p in primes)
    assert not any(is_prime_u64(c) for c in composites)


def test_is_prime_carmichael():
    # Carmichael numbers fool Fermat but not Miller-Rabin.
    for n in (561, 1105, 1729, 2465, 2821, 6601):
        assert not is_prime_u64(n)


def test_generate_deterministic():
    f1 = HashFamily.generate(10, seed=7)
    f2 = HashFamily.generate(10, seed=7)
    assert np.array_equal(f1.a, f2.a)
    assert np.array_equal(f1.b, f2.b)
    assert np.array_equal(f1.p, f2.p)


def test_generate_seed_sensitivity():
    f1 = HashFamily.generate(10, seed=7)
    f2 = HashFamily.generate(10, seed=8)
    assert not np.array_equal(f1.p, f2.p)


def test_generated_constants_valid():
    f = HashFamily.generate(30, seed=0)
    assert f.size == 30
    assert all(is_prime_u64(int(p)) for p in f.p)
    assert (f.a > 0).all() and (f.a < f.p).all()
    assert (f.b < f.p).all()
    assert (f.p >= (1 << 30)).all() and (f.p < (1 << 31)).all()


def test_apply_matches_scalar():
    f = HashFamily.generate(5, seed=3)
    xs = np.array([0, 1, 12345, (1 << 32) - 1, (1 << 62)], dtype=np.uint64)
    for t in range(f.size):
        vec = f.apply(t, xs)
        for x, h in zip(xs, vec):
            assert int(h) == f.apply_scalar(t, int(x))


def test_apply_range():
    f = HashFamily.generate(3, seed=1)
    xs = np.arange(1000, dtype=np.uint64)
    for t in range(3):
        h = f.apply(t, xs)
        assert (h < f.p[t]).all()


def test_apply_bad_trial():
    f = HashFamily.generate(2, seed=1)
    with pytest.raises(SketchError):
        f.apply(2, np.array([1], dtype=np.uint64))


def test_truncated_prefix_property():
    f = HashFamily.generate(10, seed=5)
    g = f.truncated(4)
    assert g.size == 4
    assert np.array_equal(g.a, f.a[:4])
    with pytest.raises(SketchError):
        f.truncated(11)


def test_invalid_constants_rejected():
    with pytest.raises(SketchError):
        HashFamily(
            a=np.array([0], dtype=np.uint64),
            b=np.array([0], dtype=np.uint64),
            p=np.array([101], dtype=np.uint64),
        )


@given(st.integers(min_value=0, max_value=(1 << 62)))
def test_hash_is_deterministic_function(x):
    f = HashFamily.generate(2, seed=9)
    a = f.apply(0, np.array([x], dtype=np.uint64))[0]
    b = f.apply(0, np.array([x], dtype=np.uint64))[0]
    assert a == b
