import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SketchError
from repro.seq import SequenceSet, decode, encode, random_codes
from repro.sketch import (
    HashFamily,
    jem_sketch_single,
    minimizers,
    pack_key,
    query_sketch_values,
    subject_sketch_pairs,
    unpack_keys,
)

dna = st.text(alphabet="acgt", min_size=30, max_size=300)


def naive_subject_pairs(seqs, k, w, ell, family):
    """Direct transcription of Algorithm 1 over every subject."""
    per_trial = [set() for _ in range(family.size)]
    for sid in range(len(seqs)):
        ml = minimizers(seqs.codes_of(sid), k, w)
        P, V = ml.positions, ml.ranks
        for i in range(len(ml)):
            in_interval = (P >= P[i]) & (P <= P[i] + ell)
            vals = V[in_interval]
            for t in range(family.size):
                hashed = family.apply(t, vals)
                sketch = int(vals[int(np.argmin(hashed))])
                per_trial[t].add((sketch, sid))
    return per_trial


def test_pack_unpack_round_trip():
    values = np.array([0, 5, (1 << 32) - 1], dtype=np.uint64)
    subjects = np.array([3, 0, (1 << 32) - 1], dtype=np.uint64)
    keys = pack_key(values, subjects)
    v2, s2 = unpack_keys(keys)
    assert np.array_equal(v2, values)
    assert np.array_equal(s2.astype(np.uint64), subjects)


def test_pack_rejects_large_values():
    with pytest.raises(SketchError):
        pack_key(np.array([1 << 32], dtype=np.uint64), np.array([0], dtype=np.uint64))


def test_subject_pairs_match_naive(rng):
    family = HashFamily.generate(5, seed=11)
    seqs = SequenceSet.from_strings(
        [(f"s{i}", decode(random_codes(400, rng))) for i in range(4)]
    )
    k, w, ell = 8, 10, 100
    got = subject_sketch_pairs(seqs, k, w, ell, family)
    expected = naive_subject_pairs(seqs, k, w, ell, family)
    for t in range(family.size):
        vals, sids = unpack_keys(got[t])
        got_set = set(zip(vals.tolist(), sids.tolist()))
        assert got_set == expected[t]


def test_subject_pairs_sorted_unique():
    rng = np.random.default_rng(3)
    family = HashFamily.generate(4, seed=2)
    seqs = SequenceSet.from_strings([("s", decode(random_codes(600, rng)))])
    for keys in subject_sketch_pairs(seqs, 8, 10, 50, family):
        assert keys.size <= 1 or (keys[1:] > keys[:-1]).all()


def test_subject_id_offset():
    rng = np.random.default_rng(4)
    family = HashFamily.generate(3, seed=2)
    seqs = SequenceSet.from_strings([("s", decode(random_codes(300, rng)))])
    base = subject_sketch_pairs(seqs, 8, 10, 50, family)
    shifted = subject_sketch_pairs(seqs, 8, 10, 50, family, subject_id_offset=7)
    for t in range(3):
        _, s0 = unpack_keys(base[t])
        _, s7 = unpack_keys(shifted[t])
        assert np.array_equal(s0 + 7, s7)


def test_empty_subject_set():
    family = HashFamily.generate(2, seed=2)
    seqs = SequenceSet.from_strings([("s", "ac")])  # shorter than k
    keys = subject_sketch_pairs(seqs, 8, 10, 50, family)
    assert all(k.size == 0 for k in keys)


def test_query_sketches_match_single(rng):
    family = HashFamily.generate(6, seed=13)
    segs = SequenceSet.from_strings(
        [(f"q{i}", decode(random_codes(200, rng))) for i in range(5)]
    )
    qs = query_sketch_values(segs, 8, 10, family)
    assert qs.has.all()
    for i in range(5):
        ml = minimizers(segs.codes_of(i), 8, 10)
        expected = jem_sketch_single(ml, family)
        assert np.array_equal(qs.values[:, i], expected)


def test_query_sketches_empty_segment():
    family = HashFamily.generate(2, seed=1)
    segs = SequenceSet.from_strings([("a", "acgtacgtacgtacgtacgt"), ("b", "nnnn")])
    qs = query_sketch_values(segs, 8, 4, family)
    assert list(qs.has) == [True, False]


def test_sketch_single_requires_minimizers():
    family = HashFamily.generate(2, seed=1)
    ml = minimizers(encode("ac"), 8, 4)
    with pytest.raises(SketchError):
        jem_sketch_single(ml, family)


@settings(max_examples=20, deadline=None)
@given(dna)
def test_sketch_values_are_minimizers(seq):
    """Every JEM sketch value is one of the sequence's minimizers."""
    family = HashFamily.generate(4, seed=21)
    seqs = SequenceSet.from_strings([("s", seq)])
    k, w, ell = 6, 8, 60
    ml = minimizers(encode(seq), k, w)
    if len(ml) == 0:
        return
    for keys in subject_sketch_pairs(seqs, k, w, ell, family):
        vals, _ = unpack_keys(keys)
        assert np.isin(vals, ml.ranks).all()


def test_identical_segment_finds_subject(rng):
    """A query equal to a subject substring sketches to colliding values."""
    family = HashFamily.generate(10, seed=5)
    subject = random_codes(3000, rng)
    seqs = SequenceSet.from_strings([("s", decode(subject))])
    k, w, ell = 12, 10, 500
    table = subject_sketch_pairs(seqs, k, w, ell, family)
    segment = SequenceSet.from_strings([("q", decode(subject[1000:1500]))])
    qs = query_sketch_values(segment, k, w, family)
    hits = 0
    for t in range(family.size):
        vals, _ = unpack_keys(table[t])
        if qs.values[t, 0] in vals:
            hits += 1
    assert hits >= 5  # most trials should collide
