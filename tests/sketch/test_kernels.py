"""Equivalence of the batched multi-trial kernels against the retained
per-trial reference paths.

The batched subject/query sketchers, the 2-d sparse table and the row-wise
dedupe must be *bit-identical* to the per-trial code they replaced — the
reference implementations are kept in the tree precisely so these tests
(and the bench parity check) can keep asserting that, including when
``MAX_BATCH_ELEMS`` forces multi-chunk execution.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SketchError
from repro.seq import SequenceSet, random_codes
from repro.sketch import (
    HashFamily,
    SparseTableRMQ,
    SparseTableRMQ2D,
    jem_sketch_single,
    minimizers,
    pack_key,
    query_kernel,
    query_kernel_reference,
    query_sketch_values,
    query_sketch_values_reference,
    subject_kernel,
    subject_kernel_reference,
    subject_sketch_pairs,
    subject_sketch_pairs_reference,
)
from repro.sketch import _native
from repro.sketch import kernels as kernels_mod
from repro.sketch.kernels import (
    key_scratch,
    pack_keys_batched,
    sorted_unique_rows,
    trial_chunks,
)

FAMILY = HashFamily.generate(7, seed=13)


def _random_set(rng, n, max_len=3000, with_n_runs=True):
    """A set with short/long/empty/all-N sequences mixed in."""
    records = []
    for i in range(n):
        kind = rng.integers(0, 6)
        if kind == 0:
            codes = np.empty(0, dtype=np.uint8)  # empty sequence
        elif kind == 1:
            codes = np.full(int(rng.integers(5, 60)), 4, dtype=np.uint8)  # all N
        elif kind == 2:
            codes = random_codes(int(rng.integers(1, 20)), rng)  # < k / 1 window
        else:
            codes = random_codes(int(rng.integers(20, max_len)), rng)
            if with_n_runs and codes.size > 50:
                lo = int(rng.integers(0, codes.size - 10))
                codes[lo : lo + 10] = 4  # interior invalid run
        records.append((f"s{i}", codes))
    from repro.seq import SequenceSetBuilder

    builder = SequenceSetBuilder()
    for name, codes in records:
        builder.add(name, codes)
    return builder.build()


# -- hash family ---------------------------------------------------------------

def test_apply_all_rows_match_apply_and_scalar():
    x = np.random.default_rng(0).integers(0, 1 << 32, size=200, dtype=np.uint64)
    matrix = FAMILY.apply_all(x)
    assert matrix.shape == (FAMILY.size, x.size)
    for t in range(FAMILY.size):
        assert np.array_equal(matrix[t], FAMILY.apply(t, x))
    for t in range(FAMILY.size):
        for xi in x[:5]:
            assert int(matrix[t, np.flatnonzero(x == xi)[0]]) == FAMILY.apply_scalar(
                t, int(xi)
            )


def test_apply_all_empty_input():
    out = FAMILY.apply_all(np.empty(0, dtype=np.uint64))
    assert out.shape == (FAMILY.size, 0)


def test_apply_all_out_buffer_reused_and_validated():
    x = np.arange(64, dtype=np.uint64)
    buf = np.empty((FAMILY.size, x.size), dtype=np.uint64)
    out = FAMILY.apply_all(x, out=buf)
    assert out is buf
    assert np.array_equal(buf, FAMILY.apply_all(x))
    with pytest.raises(SketchError):
        FAMILY.apply_all(x, out=np.empty((FAMILY.size, x.size + 1), dtype=np.uint64))
    with pytest.raises(SketchError):
        FAMILY.apply_all(x, out=np.empty((FAMILY.size, x.size), dtype=np.int64))


def test_apply_all_transposed_is_exact_transpose():
    x = np.random.default_rng(2).integers(0, 1 << 32, size=300, dtype=np.uint64)
    assert np.array_equal(FAMILY.apply_all_transposed(x), FAMILY.apply_all(x).T)
    buf = np.empty((x.size, FAMILY.size), dtype=np.uint64)
    assert FAMILY.apply_all_transposed(x, out=buf) is buf
    with pytest.raises(SketchError):
        FAMILY.apply_all_transposed(x, out=np.empty((FAMILY.size, x.size), dtype=np.uint64))


def test_trial_slice_matches_rows():
    x = np.arange(50, dtype=np.uint64)
    sub = FAMILY.trial_slice(2, 5)
    assert sub.size == 3
    assert np.array_equal(sub.apply_all(x), FAMILY.apply_all(x)[2:5])


def test_trial_slice_rejects_bad_bounds():
    with pytest.raises(SketchError):
        FAMILY.trial_slice(3, 3)
    with pytest.raises(SketchError):
        FAMILY.trial_slice(0, FAMILY.size + 1)


# -- 2-d sparse table ----------------------------------------------------------

@pytest.mark.parametrize("n", [1, 2, 3, 17, 100])
def test_rmq2d_matches_per_trial_1d(n):
    rng = np.random.default_rng(n)
    values = rng.integers(0, 1 << 32, size=(5, n), dtype=np.uint64)
    starts = rng.integers(0, n, size=20, dtype=np.int64)
    ends = starts + rng.integers(1, n + 1 - starts, size=20, dtype=np.int64)
    rmq2 = SparseTableRMQ2D(values, track_argmin=True)
    mins2 = rmq2.query(starts, ends)
    idx2, vals2 = rmq2.query_argmin(starts, ends)
    for t in range(5):
        rmq1 = SparseTableRMQ(values[t], track_argmin=True)
        assert np.array_equal(mins2[t], rmq1.query(starts, ends))
        idx1, vals1 = rmq1.query_argmin(starts, ends)
        assert np.array_equal(idx2[t], idx1)
        assert np.array_equal(vals2[t], vals1)


def test_rmq2d_leftmost_tie_break():
    values = np.zeros((3, 8), dtype=np.uint64)  # every entry ties
    rmq = SparseTableRMQ2D(values, track_argmin=True)
    idx, _ = rmq.query_argmin(np.array([0, 2]), np.array([8, 7]))
    assert np.array_equal(idx, np.tile([0, 2], (3, 1)))


def test_rmq2d_values_packable_skips_scan_but_matches():
    values = np.arange(24, dtype=np.uint64).reshape(3, 8)
    a = SparseTableRMQ2D(values, track_argmin=True)
    b = SparseTableRMQ2D(values, track_argmin=True, values_packable=True)
    starts = np.array([0, 3]), np.array([5, 8])
    assert np.array_equal(a.query(*starts), b.query(*starts))


def test_rmq2d_rejects_oversized_values_with_argmin():
    values = np.full((2, 4), 1 << 32, dtype=np.uint64)
    with pytest.raises(SketchError):
        SparseTableRMQ2D(values, track_argmin=True)


def test_rmq2d_max_interval_parity_and_cap_enforcement():
    rng = np.random.default_rng(9)
    values = rng.integers(0, 1 << 31, size=(4, 64), dtype=np.uint64)
    starts = rng.integers(0, 60, size=30, dtype=np.int64)
    ends = starts + rng.integers(1, np.minimum(7, 64 - starts) + 1, size=30)
    full = SparseTableRMQ2D(values, track_argmin=True)
    capped = SparseTableRMQ2D(values, track_argmin=True, max_interval=7)
    assert len(capped._levels) < len(full._levels)
    assert np.array_equal(capped.query(starts, ends), full.query(starts, ends))
    with pytest.raises(SketchError):
        capped.query(np.array([0]), np.array([64]))  # longer than the cap
    with pytest.raises(SketchError):
        SparseTableRMQ2D(values, max_interval=0)


def test_rmq2d_workspace_build_is_bit_identical():
    rng = np.random.default_rng(10)
    values = rng.integers(0, 1 << 31, size=(3, 50), dtype=np.uint64)
    starts = rng.integers(0, 45, size=20, dtype=np.int64)
    ends = starts + rng.integers(1, np.minimum(6, 50 - starts) + 1, size=20)
    plain = SparseTableRMQ2D(values, track_argmin=True, values_packable=True)
    ws = SparseTableRMQ2D(
        values, track_argmin=True, values_packable=True, max_interval=6, workspace=True
    )
    idx_p, min_p = plain.query_argmin(starts, ends)
    idx_w, min_w = ws.query_argmin(starts, ends)
    assert np.array_equal(idx_p, idx_w)
    assert np.array_equal(min_p, min_w)


def test_rmq2d_query_packed_matches_argmin_and_validates():
    rng = np.random.default_rng(12)
    values = rng.integers(0, 1 << 31, size=(3, 40), dtype=np.uint64)
    starts = np.array([0, 5, 30], dtype=np.int64)
    ends = np.array([8, 9, 40], dtype=np.int64)
    rmq = SparseTableRMQ2D(values, track_argmin=True, values_packable=True)
    packed = rmq.query_packed(starts, ends)
    idx, mins = rmq.query_argmin(starts, ends)
    assert np.array_equal(packed >> np.uint64(32), mins)
    assert np.array_equal((packed & np.uint64(0xFFFFFFFF)).astype(np.int64), idx)
    buf = np.empty((3, 3), dtype=np.uint64)
    assert rmq.query_packed(starts, ends, out=buf) is buf
    with pytest.raises(SketchError):
        rmq.query_packed(starts, ends, out=np.empty((3, 4), dtype=np.uint64))
    plain = SparseTableRMQ2D(values)
    with pytest.raises(SketchError):
        plain.query_packed(starts, ends)


# -- packing / dedupe kernels --------------------------------------------------

def test_pack_keys_batched_matches_pack_key():
    rng = np.random.default_rng(3)
    values = rng.integers(0, 1 << 32, size=(4, 50), dtype=np.uint64)
    subjects = rng.integers(0, 1 << 31, size=50, dtype=np.uint64)
    packed = pack_keys_batched(values, subjects)
    for t in range(4):
        assert np.array_equal(packed[t], pack_key(values[t], subjects))


def test_pack_keys_batched_validates_once():
    bad = np.full((2, 3), 1 << 32, dtype=np.uint64)
    ok = np.zeros(3, dtype=np.uint64)
    with pytest.raises(SketchError):
        pack_keys_batched(bad, ok)
    with pytest.raises(SketchError):
        pack_keys_batched(np.zeros((2, 3), dtype=np.uint64), bad[0])


def test_sorted_unique_rows_matches_np_unique():
    rng = np.random.default_rng(4)
    keys = rng.integers(0, 50, size=(6, 200), dtype=np.uint64)
    expected = [np.unique(keys[t]) for t in range(6)]
    got = sorted_unique_rows(keys.copy())
    for exp, row in zip(expected, got):
        assert np.array_equal(row, exp)


def test_sorted_unique_rows_empty_columns():
    rows = sorted_unique_rows(np.empty((3, 0), dtype=np.uint64))
    assert len(rows) == 3
    assert all(r.size == 0 for r in rows)


def test_sorted_unique_rows_results_are_copies():
    keys = key_scratch(2, 10)
    keys[...] = np.arange(20, dtype=np.uint64).reshape(2, 10)
    rows = sorted_unique_rows(keys)
    keys[...] = 0  # clobber the scratch; results must not change
    assert np.array_equal(rows[0], np.arange(10, dtype=np.uint64))


def test_key_scratch_reuses_buffer_and_is_thread_local():
    a = key_scratch(3, 5)
    b = key_scratch(3, 5)
    assert a.base is b.base  # same backing allocation on one thread
    other: list = []
    t = threading.Thread(target=lambda: other.append(key_scratch(3, 5)))
    t.start()
    t.join()
    assert other[0].base is not a.base


def test_key_scratch_slots_are_independent_buffers():
    a = key_scratch(4, 8, slot="keys")
    b = key_scratch(4, 8, slot="hash")
    assert a.base is not b.base
    a[...] = 1
    b[...] = 2
    assert (a == 1).all()  # writing one slot never clobbers another
    assert key_scratch(4, 8, slot="hash").base is b.base


def test_trial_chunks_cover_and_respect_budget():
    chunks = trial_chunks(10, 1000, budget=5000)  # with levels: > 1000/trial
    assert [c.start for c in chunks][0] == 0
    flat = [t for c in chunks for t in c]
    assert flat == list(range(10))
    chunks = trial_chunks(10, 10**9, budget=1)  # degrade to per-trial, not fail
    assert all(len(c) == 1 for c in chunks)


# -- batched sketchers vs reference paths --------------------------------------

CASES = [(16, 100, 1000), (12, 20, 500), (8, 1, 50), (5, 7, 10)]


@pytest.mark.parametrize("k,w,ell", CASES)
def test_subject_pairs_match_reference(k, w, ell):
    seqs = _random_set(np.random.default_rng(k * 100 + w), 25)
    got = subject_sketch_pairs(seqs, k, w, ell, FAMILY, subject_id_offset=7)
    expected = subject_sketch_pairs_reference(
        seqs, k, w, ell, FAMILY, subject_id_offset=7
    )
    assert len(got) == len(expected) == FAMILY.size
    for g, e in zip(got, expected):
        assert np.array_equal(g, e)


@pytest.mark.parametrize("k,w,ell", CASES)
def test_query_values_match_reference(k, w, ell):
    seqs = _random_set(np.random.default_rng(k * 7 + w), 25, max_len=800)
    got = query_sketch_values(seqs, k, w, FAMILY)
    expected = query_sketch_values_reference(seqs, k, w, FAMILY)
    assert np.array_equal(got.has, expected.has)
    assert np.array_equal(got.values[:, got.has], expected.values[:, expected.has])


def test_query_values_match_single_sketch():
    """Cross-check: the batched query kernel == per-sequence jem_sketch_single."""
    k, w = 12, 20
    seqs = _random_set(np.random.default_rng(5), 10)
    got = query_sketch_values(seqs, k, w, FAMILY)
    for i in range(len(seqs)):
        minis = minimizers(seqs.codes_of(i), k, w)
        if len(minis) == 0:
            assert not got.has[i]
            continue
        assert got.has[i]
        assert np.array_equal(got.values[:, i], jem_sketch_single(minis, FAMILY))


def test_chunked_execution_is_bit_identical(monkeypatch):
    """Shrinking the batch budget forces multi-chunk paths; output unchanged."""
    seqs = _random_set(np.random.default_rng(11), 20)
    k, w, ell = 12, 20, 500
    whole_subject = subject_sketch_pairs(seqs, k, w, ell, FAMILY)
    whole_query = query_sketch_values(seqs, k, w, FAMILY)
    monkeypatch.setattr(kernels_mod, "MAX_BATCH_ELEMS", 256)
    chunked_subject = subject_sketch_pairs(seqs, k, w, ell, FAMILY)
    chunked_query = query_sketch_values(seqs, k, w, FAMILY)
    for a, b in zip(whole_subject, chunked_subject):
        assert np.array_equal(a, b)
    assert np.array_equal(whole_query.has, chunked_query.has)
    assert np.array_equal(
        whole_query.values[:, whole_query.has],
        chunked_query.values[:, chunked_query.has],
    )


def test_empty_and_degenerate_sets():
    empty = SequenceSet.empty()
    pairs = subject_sketch_pairs(empty, 12, 20, 500, FAMILY)
    assert all(p.size == 0 for p in pairs)
    sketches = query_sketch_values(empty, 12, 20, FAMILY)
    assert sketches.values.shape == (FAMILY.size, 0)
    all_n = SequenceSet.from_strings([("n1", "n" * 40), ("n2", "n" * 25)])
    pairs = subject_sketch_pairs(all_n, 12, 20, 500, FAMILY)
    ref = subject_sketch_pairs_reference(all_n, 12, 20, 500, FAMILY)
    for g, e in zip(pairs, ref):
        assert np.array_equal(g, e)
    sketches = query_sketch_values(all_n, 12, 20, FAMILY)
    assert not sketches.has.any()


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    k=st.integers(4, 16),
    w=st.integers(1, 40),
    ell=st.integers(1, 800),
    trials=st.integers(1, 9),
)
def test_fuzzed_parity_subject_and_query(seed, k, w, ell, trials):
    family = HashFamily.generate(trials, seed=seed % 97)
    seqs = _random_set(np.random.default_rng(seed), 8, max_len=600)
    got = subject_sketch_pairs(seqs, k, w, ell, family)
    exp = subject_sketch_pairs_reference(seqs, k, w, ell, family)
    for g, e in zip(got, exp):
        assert np.array_equal(g, e)
    gq = query_sketch_values(seqs, k, w, family)
    eq = query_sketch_values_reference(seqs, k, w, family)
    assert np.array_equal(gq.has, eq.has)
    assert np.array_equal(gq.values[:, gq.has], eq.values[:, eq.has])


# -- compiled fast path --------------------------------------------------------
#
# The parity tests above run against whichever backend is active (compiled
# when a C compiler is present, numpy otherwise).  These tests pin down the
# backend explicitly: the kill switch must route around the compiled path,
# and on machines where it is available, the two backends must agree bit
# for bit on the same direct kernel inputs.

def _kernel_inputs(seed, trials=5):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 400))
    values = rng.integers(0, 1 << 32, size=n, dtype=np.uint64)
    # non-decreasing interval ends with ends[i] > i, as searchsorted produces
    ends = np.maximum.accumulate(
        np.arange(1, n + 1) + rng.integers(0, 30, size=n)
    ).clip(max=n)
    subject_ids = rng.integers(0, 1 << 16, size=n, dtype=np.uint64)
    nseg = int(rng.integers(1, min(n, 40) + 1))
    starts = np.unique(
        np.concatenate([[0], rng.integers(0, n, size=nseg - 1)])
    ).astype(np.int64)
    family = HashFamily.generate(trials, seed=seed % 89 + 1)
    return values, ends.astype(np.int64), subject_ids, starts, family


def test_kill_switch_disables_native(monkeypatch):
    monkeypatch.setenv("REPRO_NO_NATIVE", "1")
    assert _native.load() is None


def test_numpy_fallback_matches_reference(monkeypatch):
    """With the compiled path disabled, the numpy kernels must still agree."""
    monkeypatch.setenv("REPRO_NO_NATIVE", "1")
    for seed in (1, 2, 3):
        values, ends, subject_ids, starts, family = _kernel_inputs(seed)
        got = subject_kernel(values, ends, subject_ids, family)
        exp = subject_kernel_reference(values, ends, subject_ids, family)
        for g, e in zip(got, exp):
            assert np.array_equal(g, e)
        assert np.array_equal(
            query_kernel(values, starts, family),
            query_kernel_reference(values, starts, family),
        )


@pytest.mark.skipif(_native.load() is None, reason="no C compiler available")
@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_native_and_numpy_backends_bit_identical(seed):
    import os

    values, ends, subject_ids, starts, family = _kernel_inputs(seed)
    nat_subject = subject_kernel(values, ends, subject_ids, family)
    nat_query = query_kernel(values, starts, family)
    os.environ["REPRO_NO_NATIVE"] = "1"
    try:
        np_subject = subject_kernel(values, ends, subject_ids, family)
        np_query = query_kernel(values, starts, family)
    finally:
        del os.environ["REPRO_NO_NATIVE"]
    for a, b in zip(nat_subject, np_subject):
        assert np.array_equal(a, b)
    assert np.array_equal(nat_query, np_query)


@pytest.mark.skipif(_native.load() is None, reason="no C compiler available")
def test_native_compile_is_cached(tmp_path, monkeypatch):
    """A second load in a fresh cache dir compiles once and reuses the .so."""
    monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path))
    first = _native._compile()
    stamp = first.stat().st_mtime_ns
    second = _native._compile()
    assert first == second
    assert second.stat().st_mtime_ns == stamp
