import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SketchError
from repro.seq import encode, reverse_complement
from repro.sketch import (
    canonical_kmer_ranks,
    kmer_ranks,
    rank_to_string,
    revcomp_rank,
    string_to_rank,
    valid_kmer_mask,
)

dna = st.text(alphabet="acgt", min_size=1, max_size=120)


def naive_ranks(seq: str, k: int) -> list[int]:
    return [string_to_rank(seq[i : i + k]) for i in range(len(seq) - k + 1)]


def test_kmer_ranks_known():
    # "acgt": 2-mers ac=0b0001=1, cg=0b0110=6, gt=0b1011=11
    assert list(kmer_ranks(encode("acgt"), 2)) == [1, 6, 11]


def test_kmer_ranks_short_sequence():
    assert kmer_ranks(encode("ac"), 3).size == 0


def test_kmer_ranks_bad_k():
    with pytest.raises(SketchError):
        kmer_ranks(encode("acgt"), 0)
    with pytest.raises(SketchError):
        kmer_ranks(encode("acgt"), 32)


@given(dna, st.integers(min_value=1, max_value=12))
def test_kmer_ranks_match_naive(seq, k):
    if len(seq) < k:
        return
    assert list(kmer_ranks(encode(seq), k)) == naive_ranks(seq, k)


@given(dna, st.integers(min_value=1, max_value=12))
def test_canonical_invariant_under_revcomp(seq, k):
    """Canonical k-mer multiset of a sequence equals that of its revcomp."""
    if len(seq) < k:
        return
    fwd, _ = canonical_kmer_ranks(encode(seq), k)
    rc, _ = canonical_kmer_ranks(reverse_complement(encode(seq)), k)
    assert sorted(fwd.tolist()) == sorted(rc.tolist())


@given(dna, st.integers(min_value=1, max_value=12))
def test_canonical_is_min_of_strands(seq, k):
    if len(seq) < k:
        return
    canon, valid = canonical_kmer_ranks(encode(seq), k)
    assert valid.all()
    for i in range(len(seq) - k + 1):
        f = string_to_rank(seq[i : i + k])
        r = revcomp_rank(f, k)
        assert canon[i] == min(f, r)


def test_valid_mask_blocks_invalid_windows():
    mask = valid_kmer_mask(encode("acgNacg"), 3)
    #  windows: acg cgN gNa Nac acg -> valid at 0 and 4
    assert list(mask) == [True, False, False, False, True]


def test_canonical_masks_invalid():
    _, valid = canonical_kmer_ranks(encode("aNa"), 2)
    assert list(valid) == [False, False]


def test_rank_string_round_trip():
    for kmer in ["a", "acgt", "ttgca", "gggggggg"]:
        assert rank_to_string(string_to_rank(kmer), len(kmer)) == kmer


def test_rank_to_string_out_of_range():
    with pytest.raises(SketchError):
        rank_to_string(16, 2)


def test_revcomp_rank_matches_string():
    r = string_to_rank("aacg")
    assert rank_to_string(revcomp_rank(r, 4), 4) == "cgtt"
