import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SketchError
from repro.seq import SequenceSet, encode
from repro.sketch import (
    HashFamily,
    jaccard,
    minhash_jaccard_estimate,
    minhash_sketch,
    minhash_sketch_set,
)

dna = st.text(alphabet="acgt", min_size=10, max_size=200)


def test_sketch_deterministic():
    f = HashFamily.generate(8, seed=1)
    codes = encode("acgtacgtagcatgcatg")
    assert np.array_equal(minhash_sketch(codes, 4, f), minhash_sketch(codes, 4, f))


def test_sketch_identical_sequences_match():
    f = HashFamily.generate(8, seed=1)
    a = minhash_sketch(encode("acgtacgtagcatgcatg"), 4, f)
    b = minhash_sketch(encode("acgtacgtagcatgcatg"), 4, f)
    assert minhash_jaccard_estimate(a, b) == 1.0


def test_sketch_empty_rejected():
    f = HashFamily.generate(2, seed=1)
    with pytest.raises(SketchError):
        minhash_sketch(encode("ac"), 5, f)


def test_sketch_set_matches_individual():
    f = HashFamily.generate(6, seed=2)
    seqs = SequenceSet.from_strings(
        [("a", "acgtacgtagcatgcatg"), ("b", "ttacgacgtacgaacgt"), ("c", "ggggcccaatt")]
    )
    sketches, has = minhash_sketch_set(seqs, 4, f)
    assert has.all()
    for i in range(3):
        expected = minhash_sketch(seqs.codes_of(i), 4, f)
        assert np.array_equal(sketches[:, i], expected)


def test_sketch_set_empty_sequences_flagged():
    f = HashFamily.generate(3, seed=2)
    seqs = SequenceSet.from_strings([("a", "acgtacgta"), ("b", "nn")])
    _, has = minhash_sketch_set(seqs, 4, f)
    assert list(has) == [True, False]


def test_sketch_set_minimizer_variant():
    """minimizer_w switches the base set to minimizers (a subset of k-mers)."""
    from repro.sketch import minimizers

    f = HashFamily.generate(6, seed=4)
    rng = np.random.default_rng(6)
    from repro.seq import decode, random_codes

    seqs = SequenceSet.from_strings([("s", decode(random_codes(3_000, rng)))])
    full, _ = minhash_sketch_set(seqs, 8, f)
    mini, has = minhash_sketch_set(seqs, 8, f, minimizer_w=12)
    assert has.all()
    mins = minimizers(seqs.codes_of(0), 8, 12).ranks
    # every minimizer-variant sketch value is a minimizer of the sequence
    assert np.isin(mini[:, 0], mins).all()
    # and differs from the all-k-mer sketch in at least one trial (almost
    # surely, since the base set shrank ~6x)
    assert not np.array_equal(full, mini)


def test_sketch_set_minimizer_variant_empty():
    f = HashFamily.generate(2, seed=4)
    seqs = SequenceSet.from_strings([("s", "nnnnnnnnnnnn")])
    _, has = minhash_sketch_set(seqs, 8, f, minimizer_w=4)
    assert not has[0]


def test_jaccard_exact():
    assert jaccard(np.array([1, 2, 3]), np.array([2, 3, 4])) == 0.5
    assert jaccard(np.array([1]), np.array([2])) == 0.0
    assert jaccard(np.array([], dtype=np.int64), np.array([], dtype=np.int64)) == 1.0


def test_estimate_mismatched_shapes():
    with pytest.raises(SketchError):
        minhash_jaccard_estimate(np.array([1, 2]), np.array([1]))


@settings(max_examples=20, deadline=None)
@given(dna)
def test_estimator_statistically_tracks_jaccard(seq):
    """With many trials the match fraction approaches the true Jaccard."""
    from repro.sketch.kmers import canonical_kmer_ranks

    f = HashFamily.generate(100, seed=5)
    # Perturb the sequence by replacing the middle third.
    middle = len(seq) // 3
    other = seq[:middle] + "a" * middle + seq[2 * middle :]
    k = 4
    a_codes, b_codes = encode(seq), encode(other)
    canon_a, va = canonical_kmer_ranks(a_codes, k)
    canon_b, vb = canonical_kmer_ranks(b_codes, k)
    true_j = jaccard(canon_a[va], canon_b[vb])
    est = minhash_jaccard_estimate(
        minhash_sketch(a_codes, k, f), minhash_sketch(b_codes, k, f)
    )
    assert abs(est - true_j) < 0.35  # loose statistical bound, 100 trials
