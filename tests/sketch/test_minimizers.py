import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SketchError
from repro.seq import encode
from repro.sketch import minimizer_density, minimizers
from repro.sketch.kmers import canonical_kmer_ranks

dna = st.text(alphabet="acgt", min_size=1, max_size=250)
dna_n = st.text(alphabet="acgtn", min_size=1, max_size=250)


def naive_minimizers(seq: str, k: int, w: int):
    """Direct transcription of the paper's minimizer rule."""
    codes = encode(seq)
    canon, valid = canonical_kmer_ranks(codes, k)
    sentinel = (1 << 32) - 1
    canon = np.where(valid, canon, sentinel)
    nk = canon.size
    if nk == 0:
        return []
    weff = min(w, nk)
    out = []
    last = None
    for i in range(nk - weff + 1):
        window = canon[i : i + weff]
        j = int(np.argmin(window))  # leftmost min
        entry = (int(window[j]), i + j)
        if entry != last and entry[0] != sentinel:
            out.append(entry)
        if entry != last:
            last = entry
    return out


def test_simple_case():
    ml = minimizers(encode("acgtacgta"), 2, 3)
    naive = naive_minimizers("acgtacgta", 2, 3)
    assert list(zip(ml.ranks.tolist(), ml.positions.tolist())) == naive


def test_short_sequence_single_window():
    # fewer than w k-mers: treated as one window
    ml = minimizers(encode("acgta"), 3, 100)
    assert len(ml) == 1


def test_sequence_shorter_than_k():
    ml = minimizers(encode("ac"), 5, 10)
    assert len(ml) == 0


def test_k_too_large():
    with pytest.raises(SketchError):
        minimizers(encode("a" * 100), 17, 5)


def test_all_invalid_sequence():
    ml = minimizers(encode("nnnnnnnnnn"), 3, 2)
    assert len(ml) == 0


def test_positions_strictly_increasing(rng):
    from repro.seq import random_codes

    codes = random_codes(5000, rng)
    ml = minimizers(codes, 16, 50)
    assert (np.diff(ml.positions) > 0).all()


def test_minimizers_are_subset_of_kmers(rng):
    from repro.seq import random_codes

    codes = random_codes(2000, rng)
    ml = minimizers(codes, 8, 20)
    canon, _ = canonical_kmer_ranks(codes, 8)
    assert np.isin(ml.ranks, canon).all()
    # and each recorded rank matches the k-mer at its position
    assert np.array_equal(canon[ml.positions], ml.ranks)


@settings(max_examples=60, deadline=None)
@given(dna_n, st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=20))
def test_matches_naive(seq, k, w):
    ml = minimizers(encode(seq), k, w)
    expected = naive_minimizers(seq, k, w)
    assert list(zip(ml.ranks.tolist(), ml.positions.tolist())) == expected


@settings(max_examples=30, deadline=None)
@given(dna, st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=15))
def test_window_coverage(seq, k, w):
    """Every window of w consecutive k-mers contains a chosen minimizer."""
    codes = encode(seq)
    ml = minimizers(codes, k, w)
    nk = len(seq) - k + 1
    if nk <= 0:
        assert len(ml) == 0
        return
    weff = min(w, nk)
    positions = set(ml.positions.tolist())
    for i in range(nk - weff + 1):
        assert any(i <= p < i + weff for p in positions)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.text(alphabet="acgtn", min_size=0, max_size=120), min_size=1, max_size=12),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=1, max_value=15),
)
def test_minimizers_set_matches_per_sequence(seqs, k, w):
    """The chunked batch extractor equals the per-sequence one, always."""
    from repro.seq import SequenceSet
    from repro.sketch import minimizers_set

    sset = SequenceSet.from_strings([(f"s{i}", s) for i, s in enumerate(seqs)])
    batched = minimizers_set(sset, k, w)
    assert len(batched) == len(sset)
    for i in range(len(sset)):
        single = minimizers(sset.codes_of(i), k, w)
        assert np.array_equal(single.ranks, batched[i].ranks)
        assert np.array_equal(single.positions, batched[i].positions)


def test_minimizers_set_chunk_boundary(rng):
    """Sequences straddling the internal chunk budget still match."""
    from repro.seq import SequenceSet, decode, random_codes
    from repro.sketch import minimizers_set
    import importlib

    from repro.sketch import minimizers as single_fn

    # the attribute `repro.sketch.minimizers` is shadowed by the function
    # of the same name; fetch the module object explicitly
    mod = importlib.import_module("repro.sketch.minimizers")

    old = mod._CHUNK_BASES
    mod._CHUNK_BASES = 300  # force many small chunks
    try:
        sset = SequenceSet.from_strings(
            [(f"s{i}", decode(random_codes(int(rng.integers(50, 700)), rng)))
             for i in range(12)]
        )
        batched = minimizers_set(sset, 10, 8)
        for i in range(len(sset)):
            ref = single_fn(sset.codes_of(i), 10, 8)
            assert np.array_equal(ref.ranks, batched[i].ranks)
    finally:
        mod._CHUNK_BASES = old


def test_density_estimate_sane():
    d = minimizer_density(100_000, 16, 100)
    assert 0.01 < d < 0.03  # ~2/(w+1)
    assert minimizer_density(5, 16, 100) == 0.0
