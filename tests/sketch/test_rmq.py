import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SketchError
from repro.sketch import SparseTableRMQ, range_argmin, range_min


def test_known_case():
    values = np.array([5, 3, 8, 1, 9], dtype=np.uint64)
    rmq = SparseTableRMQ(values)
    starts = np.array([0, 1, 2, 0])
    ends = np.array([2, 4, 3, 5])
    assert list(rmq.query(starts, ends)) == [3, 1, 8, 1]


def test_argmin_leftmost_ties():
    values = np.array([7, 2, 2, 2, 9], dtype=np.uint64)
    idx, mins = range_argmin(values, np.array([0, 2]), np.array([5, 5]))
    assert list(mins) == [2, 2]
    assert list(idx) == [1, 2]


def test_single_element():
    rmq = SparseTableRMQ(np.array([42], dtype=np.uint64))
    assert rmq.query(np.array([0]), np.array([1]))[0] == 42


def test_empty_build_rejected():
    with pytest.raises(SketchError):
        SparseTableRMQ(np.array([], dtype=np.uint64))


def test_empty_interval_rejected():
    rmq = SparseTableRMQ(np.array([1, 2], dtype=np.uint64))
    with pytest.raises(SketchError):
        rmq.query(np.array([1]), np.array([1]))


def test_out_of_bounds_rejected():
    rmq = SparseTableRMQ(np.array([1, 2], dtype=np.uint64))
    with pytest.raises(SketchError):
        rmq.query(np.array([0]), np.array([3]))


def test_argmin_requires_flag():
    rmq = SparseTableRMQ(np.array([1, 2], dtype=np.uint64))
    with pytest.raises(SketchError):
        rmq.query_argmin(np.array([0]), np.array([1]))


def test_uint64_values_beyond_float53():
    big = np.array([(1 << 60) + 5, (1 << 60) + 1, (1 << 60) + 3], dtype=np.uint64)
    assert range_min(big, np.array([0]), np.array([3]))[0] == (1 << 60) + 1


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=(1 << 32) - 1), min_size=1, max_size=200),
    st.data(),
)
def test_matches_naive(values, data):
    arr = np.array(values, dtype=np.uint64)
    n = arr.size
    n_queries = data.draw(st.integers(min_value=1, max_value=20))
    starts = np.array(
        [data.draw(st.integers(min_value=0, max_value=n - 1)) for _ in range(n_queries)]
    )
    ends = np.array(
        [data.draw(st.integers(min_value=int(s) + 1, max_value=n)) for s in starts]
    )
    rmq = SparseTableRMQ(arr, track_argmin=True)
    idx, mins = rmq.query_argmin(starts, ends)
    for q in range(n_queries):
        window = arr[starts[q] : ends[q]]
        assert mins[q] == window.min()
        assert idx[q] == starts[q] + int(np.argmin(window))
