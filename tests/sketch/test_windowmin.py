import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SketchError
from repro.sketch import sliding_window_argmin, sliding_window_min


def naive_window_min(values, w):
    return np.array([values[i : i + w].min() for i in range(len(values) - w + 1)])


def test_known_case():
    values = np.array([5, 3, 8, 1, 9, 2], dtype=np.uint64)
    assert list(sliding_window_min(values, 3)) == [3, 1, 1, 1]


def test_window_one_is_identity():
    values = np.array([4, 2, 7], dtype=np.uint64)
    assert np.array_equal(sliding_window_min(values, 1), values)


def test_window_equals_length():
    values = np.array([4, 2, 7], dtype=np.uint64)
    assert list(sliding_window_min(values, 3)) == [2]


def test_errors():
    v = np.arange(3, dtype=np.uint64)
    with pytest.raises(SketchError):
        sliding_window_min(v, 0)
    with pytest.raises(SketchError):
        sliding_window_min(v, 4)


def test_uint64_precision_preserved():
    # Values above 2^53 would be corrupted by a float cast.
    big = np.array([(1 << 63) + 3, (1 << 63) + 1, (1 << 63) + 2], dtype=np.uint64)
    assert list(sliding_window_min(big, 2)) == [(1 << 63) + 1, (1 << 63) + 1]


@given(
    st.lists(st.integers(min_value=0, max_value=1 << 40), min_size=1, max_size=300),
    st.integers(min_value=1, max_value=30),
)
def test_matches_naive(values, w):
    arr = np.array(values, dtype=np.uint64)
    if w > arr.size:
        return
    assert np.array_equal(sliding_window_min(arr, w), naive_window_min(arr, w))


@given(
    st.lists(st.integers(min_value=0, max_value=(1 << 32) - 1), min_size=1, max_size=200),
    st.integers(min_value=1, max_value=20),
)
def test_argmin_leftmost(values, w):
    arr = np.array(values, dtype=np.uint64)
    if w > arr.size:
        return
    pos, mins = sliding_window_argmin(arr, w)
    for i in range(arr.size - w + 1):
        window = arr[i : i + w]
        assert mins[i] == window.min()
        assert pos[i] == i + int(np.argmin(window))  # np.argmin is leftmost


def test_argmin_rejects_large_values():
    with pytest.raises(SketchError):
        sliding_window_argmin(np.array([1 << 32], dtype=np.uint64), 1)
